//! Deterministic fault injection for the degradation-path test suite.
//!
//! The `PRE_FAULT` environment variable arms seeded injection points on the
//! run path, so the integration tests (and CI's fault-injection job) can
//! prove each failure-containment path end-to-end instead of hoping the
//! code would have worked:
//!
//! * `panic:cell=<N>` — the N-th matrix/sweep cell (0-based, grid order)
//!   panics at the start of its run, exercising the supervised pool and
//!   partial-failure reporting;
//! * `corrupt-cache:key=<16-hex>` (or `corrupt-cache:key=*`) — result-cache
//!   files for that key (or every key) are corrupted right after being
//!   written, exercising checksum verification, quarantine and the
//!   recompute-on-miss path;
//! * `truncate-snapshot` — persisted snapshot files are truncated after
//!   writing, exercising the cold-run fallback.
//!
//! Several directives combine with `;`
//! (`PRE_FAULT="panic:cell=3;truncate-snapshot"`). A malformed spec panics
//! loudly at the first injection point: a fault harness that silently
//! injects nothing would make the degradation tests vacuously green.
//!
//! Everything here is deterministic — no randomness, no time — so an
//! injected failure reproduces exactly under `--reference-scheduler`, under
//! `PRE_THREADS=1`, and across reruns. With `PRE_FAULT` unset every helper
//! is a single `env::var_os` miss on a cold path (cell start, cache-file
//! write), never per-cycle.

use std::fmt;

/// Environment variable holding the fault spec.
pub const FAULT_ENV: &str = "PRE_FAULT";

/// One armed fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Panic at the start of the given cell index (grid/matrix order).
    PanicCell(usize),
    /// Corrupt result-cache files after writing: for one key, or for every
    /// key (`None`, the `key=*` form).
    CorruptCache(Option<u64>),
    /// Truncate persisted snapshot files after writing.
    TruncateSnapshot,
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fault::PanicCell(idx) => write!(f, "panic:cell={idx}"),
            Fault::CorruptCache(Some(key)) => write!(f, "corrupt-cache:key={key:016x}"),
            Fault::CorruptCache(None) => write!(f, "corrupt-cache:key=*"),
            Fault::TruncateSnapshot => write!(f, "truncate-snapshot"),
        }
    }
}

/// Parses a `PRE_FAULT` spec (`;`-separated directives).
///
/// # Errors
///
/// Returns a description of the first malformed directive.
pub fn parse_spec(spec: &str) -> Result<Vec<Fault>, String> {
    let mut faults = Vec::new();
    for directive in spec.split(';') {
        let directive = directive.trim();
        if directive.is_empty() {
            continue;
        }
        let (name, arg) = match directive.split_once(':') {
            Some((name, arg)) => (name.trim(), Some(arg.trim())),
            None => (directive, None),
        };
        match name {
            "panic" => {
                let arg = arg.ok_or_else(|| format!("`{directive}`: expected panic:cell=<N>"))?;
                let idx = arg
                    .strip_prefix("cell=")
                    .and_then(|v| v.parse::<usize>().ok())
                    .ok_or_else(|| format!("`{directive}`: expected panic:cell=<N>"))?;
                faults.push(Fault::PanicCell(idx));
            }
            "corrupt-cache" => {
                let key = match arg.and_then(|a| a.strip_prefix("key=")) {
                    None | Some("*") => None,
                    Some(hex) => Some(u64::from_str_radix(hex, 16).map_err(|_| {
                        format!("`{directive}`: bad key (expected 16 hex digits or *)")
                    })?),
                };
                faults.push(Fault::CorruptCache(key));
            }
            "truncate-snapshot" => {
                if arg.is_some() {
                    return Err(format!(
                        "`{directive}`: truncate-snapshot takes no argument"
                    ));
                }
                faults.push(Fault::TruncateSnapshot);
            }
            other => {
                return Err(format!(
                    "unknown fault directive `{other}` (expected panic, corrupt-cache, truncate-snapshot)"
                ));
            }
        }
    }
    Ok(faults)
}

/// The faults currently armed through [`FAULT_ENV`]. Re-reads the
/// environment on every call (injection points are per-cell / per-file,
/// never per-cycle), so tests can arm and disarm faults without process
/// restarts. Panics on a malformed spec — see the module docs.
pub fn active_faults() -> Vec<Fault> {
    let Some(spec) = std::env::var_os(FAULT_ENV) else {
        return Vec::new();
    };
    let spec = spec.to_string_lossy();
    match parse_spec(&spec) {
        Ok(faults) => faults,
        Err(e) => panic!("malformed {FAULT_ENV} spec: {e}"),
    }
}

/// Injection point at the start of matrix/sweep cell `index`: panics when a
/// `panic:cell=<index>` fault is armed.
pub fn panic_if_cell_faulted(index: usize) {
    for fault in active_faults() {
        if fault == Fault::PanicCell(index) {
            panic!("injected fault: {fault}");
        }
    }
}

/// `true` when a `corrupt-cache` fault is armed for `key`.
pub fn should_corrupt_cache(key: u64) -> bool {
    active_faults()
        .iter()
        .any(|f| matches!(f, Fault::CorruptCache(k) if k.is_none() || *k == Some(key)))
}

/// `true` when a `truncate-snapshot` fault is armed.
pub fn should_truncate_snapshot() -> bool {
    active_faults().contains(&Fault::TruncateSnapshot)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_each_directive() {
        assert_eq!(parse_spec("panic:cell=3"), Ok(vec![Fault::PanicCell(3)]));
        assert_eq!(
            parse_spec("corrupt-cache:key=00000000deadbeef"),
            Ok(vec![Fault::CorruptCache(Some(0xdead_beef))])
        );
        assert_eq!(
            parse_spec("corrupt-cache:key=*"),
            Ok(vec![Fault::CorruptCache(None)])
        );
        assert_eq!(
            parse_spec("corrupt-cache"),
            Ok(vec![Fault::CorruptCache(None)])
        );
        assert_eq!(
            parse_spec("truncate-snapshot"),
            Ok(vec![Fault::TruncateSnapshot])
        );
    }

    #[test]
    fn parses_combined_specs_and_tolerates_spacing() {
        let faults = parse_spec(" panic:cell=0 ; truncate-snapshot ;; corrupt-cache:key=* ")
            .expect("parses");
        assert_eq!(
            faults,
            vec![
                Fault::PanicCell(0),
                Fault::TruncateSnapshot,
                Fault::CorruptCache(None),
            ]
        );
        assert_eq!(parse_spec(""), Ok(Vec::new()));
    }

    #[test]
    fn rejects_malformed_directives() {
        assert!(parse_spec("panic").is_err());
        assert!(parse_spec("panic:cell=x").is_err());
        assert!(parse_spec("corrupt-cache:key=zz").is_err());
        assert!(parse_spec("truncate-snapshot:now").is_err());
        assert!(parse_spec("explode").is_err());
    }

    #[test]
    fn display_roundtrips_through_parse() {
        for fault in [
            Fault::PanicCell(7),
            Fault::CorruptCache(Some(0x1234)),
            Fault::CorruptCache(None),
            Fault::TruncateSnapshot,
        ] {
            assert_eq!(parse_spec(&fault.to_string()), Ok(vec![fault]));
        }
    }
}
