//! The workload × technique evaluation matrix behind Figures 2 and 3.

use crate::runner::{cell_name, run_one, RunResult, RunSpec};
use pre_model::config::SimConfig;
use pre_model::error::SimError;
use pre_runahead::Technique;
use pre_workloads::{Workload, WorkloadParams};
use std::collections::HashMap;
use std::fmt;
use std::sync::{Mutex, PoisonError};

/// One failed matrix cell: which cell, and the [`SimError`] (a panic caught
/// by the supervised pool surfaces as [`SimError::Panic`]).
#[derive(Debug)]
pub struct CellFailure {
    /// Index of the cell in spec (matrix) order.
    pub index: usize,
    /// The workload of the failed cell.
    pub workload: Workload,
    /// The technique of the failed cell.
    pub technique: Technique,
    /// What went wrong.
    pub error: SimError,
}

impl fmt::Display for CellFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cell {} ({}): {}",
            self.index,
            cell_name(self.workload, self.technique),
            self.error
        )
    }
}

/// The outcome of a failure-isolated matrix run: every cell that succeeded
/// (in matrix order) plus a record of every cell that did not. A panicking
/// or erroring cell never takes down its siblings.
#[derive(Debug)]
pub struct MatrixRun {
    /// The successful cells, in matrix order.
    pub matrix: EvaluationMatrix,
    /// The failed cells, in matrix order.
    pub failures: Vec<CellFailure>,
    /// Total cells attempted (`matrix.results().len() + failures.len()`).
    pub cells: usize,
}

impl MatrixRun {
    /// `true` when every cell produced a result.
    pub fn is_complete(&self) -> bool {
        self.failures.is_empty()
    }

    /// The complete matrix, or the first failure in matrix order.
    ///
    /// # Errors
    ///
    /// Returns the first [`CellFailure`]'s error when any cell failed.
    pub fn into_result(self) -> Result<EvaluationMatrix, SimError> {
        match self.failures.into_iter().next() {
            None => Ok(self.matrix),
            Some(failure) => Err(failure.error),
        }
    }
}

/// Results of running a set of workloads under a set of techniques.
#[derive(Debug, Clone, Default)]
pub struct EvaluationMatrix {
    results: Vec<RunResult>,
    /// (workload, technique) → index of the *first* result for that cell,
    /// maintained by [`EvaluationMatrix::push`]. Keeps the aggregate queries
    /// (`gmean_speedup`, `mean_energy_savings`, …) O(cells) instead of
    /// O(cells²) — they call [`EvaluationMatrix::get`] per workload.
    index: HashMap<(Workload, Technique), usize>,
}

impl EvaluationMatrix {
    /// Creates an empty matrix.
    pub fn new() -> Self {
        EvaluationMatrix::default()
    }

    /// Runs `workloads` × `techniques` with the given configuration and
    /// per-run micro-op budget, invoking `progress` after every completed
    /// run (for incremental console output).
    ///
    /// Cells are independent simulations, so they are fanned out over a
    /// [`pre_par`] worker pool (one worker per core, override with
    /// `PRE_THREADS`). Each cell is fully deterministic, and results are
    /// collected back in matrix order, so the returned matrix is
    /// bit-identical to [`EvaluationMatrix::run_serial`] for the same
    /// arguments. `progress` fires as cells complete, which under parallel
    /// execution is not necessarily matrix order.
    ///
    /// # Errors
    ///
    /// Returns the first [`SimError`] in matrix order. Unlike the serial
    /// path, later cells may already have run by then; use
    /// [`EvaluationMatrix::run_specs_isolated`] to keep their results.
    pub fn run(
        workloads: &[Workload],
        techniques: &[Technique],
        config: &SimConfig,
        params: &WorkloadParams,
        max_uops: u64,
        progress: impl FnMut(&RunResult) + Send,
    ) -> Result<Self, SimError> {
        let specs = Self::specs(workloads, techniques, config, params, max_uops);
        Self::run_specs(&specs, progress)
    }

    /// Runs an explicit list of cells (in the given order) over the worker
    /// pool. This is the all-or-nothing wrapper around
    /// [`EvaluationMatrix::run_specs_isolated`]; use it when a partial
    /// matrix is useless to the caller.
    ///
    /// # Errors
    ///
    /// Returns the first [`SimError`] in spec order (a caught cell panic
    /// included, as [`SimError::Panic`]).
    pub fn run_specs(
        specs: &[RunSpec],
        progress: impl FnMut(&RunResult) + Send,
    ) -> Result<Self, SimError> {
        Self::run_specs_isolated(specs, progress).into_result()
    }

    /// Runs an explicit list of cells over the supervised worker pool,
    /// isolating failures: a cell that returns an error *or panics* is
    /// recorded in [`MatrixRun::failures`] while every other cell still
    /// produces its (bit-identical) result. Surviving-cell determinism is
    /// asserted by the fault-injection suite.
    pub fn run_specs_isolated(
        specs: &[RunSpec],
        progress: impl FnMut(&RunResult) + Send,
    ) -> MatrixRun {
        let progress = Mutex::new(progress);
        let indices: Vec<usize> = (0..specs.len()).collect();
        let outcomes = pre_par::try_par_map(&indices, |&i| {
            crate::fault::panic_if_cell_faulted(i);
            let outcome = run_one(&specs[i]);
            if let Ok(result) = &outcome {
                // Recovering a poisoned progress lock is safe: the callback
                // only renders console output.
                let mut report = progress.lock().unwrap_or_else(PoisonError::into_inner);
                (*report)(result);
            }
            outcome
        });
        let mut matrix = EvaluationMatrix::new();
        let mut failures = Vec::new();
        for (i, outcome) in outcomes.into_iter().enumerate() {
            let spec = &specs[i];
            let error = match outcome {
                Ok(Ok(result)) => {
                    matrix.push(result);
                    continue;
                }
                Ok(Err(error)) => error,
                Err(job) => SimError::Panic {
                    detail: job.payload,
                },
            };
            failures.push(CellFailure {
                index: i,
                workload: spec.workload,
                technique: spec.technique,
                error,
            });
        }
        MatrixRun {
            matrix,
            failures,
            cells: specs.len(),
        }
    }

    /// Runs the matrix one cell at a time on the calling thread, in matrix
    /// order. Reference implementation for [`EvaluationMatrix::run`]; the
    /// parallel path must produce bit-identical statistics.
    ///
    /// # Errors
    ///
    /// Returns the first [`SimError`] encountered; later cells do not run.
    pub fn run_serial(
        workloads: &[Workload],
        techniques: &[Technique],
        config: &SimConfig,
        params: &WorkloadParams,
        max_uops: u64,
        mut progress: impl FnMut(&RunResult),
    ) -> Result<Self, SimError> {
        let mut matrix = EvaluationMatrix::new();
        for spec in Self::specs(workloads, techniques, config, params, max_uops) {
            let result = run_one(&spec)?;
            progress(&result);
            matrix.push(result);
        }
        Ok(matrix)
    }

    /// The run specifications for every (workload, technique) cell, in
    /// matrix order (workload-major, matching the paper's figures).
    fn specs(
        workloads: &[Workload],
        techniques: &[Technique],
        config: &SimConfig,
        params: &WorkloadParams,
        max_uops: u64,
    ) -> Vec<RunSpec> {
        workloads
            .iter()
            .flat_map(|&workload| {
                techniques
                    .iter()
                    .map(move |&technique| (workload, technique))
            })
            .map(|(workload, technique)| {
                RunSpec::new(workload, technique)
                    .with_budget(max_uops)
                    .with_config(config.clone())
                    .with_params(*params)
            })
            .collect()
    }

    /// Adds a result (used by custom sweeps). The first result for a
    /// (workload, technique) cell is the one [`EvaluationMatrix::get`]
    /// returns, matching the original linear-scan semantics.
    pub fn push(&mut self, result: RunResult) {
        let key = (result.workload, result.technique);
        let idx = self.results.len();
        self.results.push(result);
        self.index.entry(key).or_insert(idx);
    }

    /// All results.
    pub fn results(&self) -> &[RunResult] {
        &self.results
    }

    /// The result for one (workload, technique) cell, if present (the first
    /// pushed, when a sweep pushed several). O(1) via the cell index.
    pub fn get(&self, workload: Workload, technique: Technique) -> Option<&RunResult> {
        self.index
            .get(&(workload, technique))
            .map(|&idx| &self.results[idx])
    }

    /// The workloads present in the matrix, in first-seen order.
    pub fn workloads(&self) -> Vec<Workload> {
        let mut seen = Vec::new();
        for r in &self.results {
            if !seen.contains(&r.workload) {
                seen.push(r.workload);
            }
        }
        seen
    }

    /// Speedup of `technique` over the out-of-order baseline on `workload`
    /// (IPC ratio), if both runs are present.
    pub fn speedup(&self, workload: Workload, technique: Technique) -> Option<f64> {
        let base = self.get(workload, Technique::OutOfOrder)?.ipc();
        let this = self.get(workload, technique)?.ipc();
        if base > 0.0 {
            Some(this / base)
        } else {
            None
        }
    }

    /// Energy savings of `technique` relative to the baseline on `workload`
    /// (positive = less energy).
    pub fn energy_savings(&self, workload: Workload, technique: Technique) -> Option<f64> {
        let base = self.get(workload, Technique::OutOfOrder)?;
        let this = self.get(workload, technique)?;
        Some(this.energy.savings_vs(&base.energy))
    }

    /// Geometric-mean speedup of `technique` across every workload in the
    /// matrix.
    pub fn gmean_speedup(&self, technique: Technique) -> f64 {
        let speedups: Vec<f64> = self
            .workloads()
            .into_iter()
            .filter_map(|w| self.speedup(w, technique))
            .collect();
        geometric_mean(&speedups)
    }

    /// Arithmetic-mean energy savings of `technique` across every workload.
    pub fn mean_energy_savings(&self, technique: Technique) -> f64 {
        let savings: Vec<f64> = self
            .workloads()
            .into_iter()
            .filter_map(|w| self.energy_savings(w, technique))
            .collect();
        if savings.is_empty() {
            0.0
        } else {
            savings.iter().sum::<f64>() / savings.len() as f64
        }
    }

    /// Ratio of runahead invocations of `technique` to those of the
    /// traditional-runahead configuration, averaged across workloads
    /// (Stat D: the paper reports 1.62× for PRE and 1.95× for PRE+EMQ).
    pub fn invocation_ratio_vs_runahead(&self, technique: Technique) -> f64 {
        let ratios: Vec<f64> = self
            .workloads()
            .into_iter()
            .filter_map(|w| {
                let ra = self.get(w, Technique::Runahead)?.stats.runahead_entries;
                let this = self.get(w, technique)?.stats.runahead_entries;
                if ra > 0 {
                    Some(this as f64 / ra as f64)
                } else {
                    None
                }
            })
            .collect();
        if ratios.is_empty() {
            0.0
        } else {
            ratios.iter().sum::<f64>() / ratios.len() as f64
        }
    }

    /// `true` if any run tripped the deadlock watchdog.
    pub fn any_deadlocked(&self) -> bool {
        self.results.iter().any(|r| r.deadlocked)
    }

    /// `true` if any run terminated abnormally (cycle budget or watchdog).
    pub fn any_abnormal_termination(&self) -> bool {
        self.results
            .iter()
            .any(|r| r.terminated() != pre_model::stats::TerminationKind::Completed)
    }
}

/// Geometric mean of a slice (1.0 for an empty slice).
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 1.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(1e-12).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pre_model::stats::SimStats;

    fn fake_result(workload: Workload, technique: Technique, ipc: f64, entries: u64) -> RunResult {
        let mut stats = SimStats::new();
        stats.cycles = 1_000_000;
        stats.committed_uops = (ipc * 1_000_000.0) as u64;
        stats.runahead_entries = entries;
        let energy = pre_energy::EnergyModel::default()
            .evaluate(&stats, &pre_model::config::SimConfig::haswell_like());
        RunResult {
            workload,
            technique,
            stats,
            energy,
            deadlocked: false,
            cache_hit: false,
            watchdog: None,
            sample: None,
        }
    }

    #[test]
    fn get_returns_first_pushed_result_per_cell() {
        let mut m = EvaluationMatrix::new();
        m.push(fake_result(Workload::LbmLike, Technique::Pre, 0.5, 1));
        m.push(fake_result(Workload::LbmLike, Technique::Pre, 0.9, 2));
        let got = m.get(Workload::LbmLike, Technique::Pre).unwrap();
        assert_eq!(got.stats.runahead_entries, 1);
        assert_eq!(m.results().len(), 2);
        assert!(m.get(Workload::LbmLike, Technique::Runahead).is_none());
    }

    #[test]
    fn geometric_mean_basics() {
        assert!((geometric_mean(&[2.0, 8.0]) - 4.0).abs() < 1e-9);
        assert_eq!(geometric_mean(&[]), 1.0);
    }

    #[test]
    fn speedup_and_means_from_synthetic_results() {
        let mut m = EvaluationMatrix::new();
        m.push(fake_result(
            Workload::LbmLike,
            Technique::OutOfOrder,
            0.5,
            0,
        ));
        m.push(fake_result(Workload::LbmLike, Technique::Pre, 0.75, 200));
        m.push(fake_result(
            Workload::LbmLike,
            Technique::Runahead,
            0.6,
            100,
        ));
        m.push(fake_result(
            Workload::McfLike,
            Technique::OutOfOrder,
            0.4,
            0,
        ));
        m.push(fake_result(Workload::McfLike, Technique::Pre, 0.5, 150));
        m.push(fake_result(
            Workload::McfLike,
            Technique::Runahead,
            0.44,
            100,
        ));
        assert!((m.speedup(Workload::LbmLike, Technique::Pre).unwrap() - 1.5).abs() < 1e-9);
        let gmean = m.gmean_speedup(Technique::Pre);
        assert!((gmean - (1.5f64 * 1.25).sqrt()).abs() < 1e-9);
        assert!((m.invocation_ratio_vs_runahead(Technique::Pre) - 1.75).abs() < 1e-9);
        assert_eq!(m.workloads().len(), 2);
        assert!(!m.any_deadlocked());
        assert!(!m.any_abnormal_termination());
    }

    #[test]
    fn energy_savings_reflect_faster_runs() {
        let mut m = EvaluationMatrix::new();
        let slow = fake_result(Workload::LbmLike, Technique::OutOfOrder, 0.5, 0);
        let mut fast = fake_result(Workload::LbmLike, Technique::Pre, 0.5, 0);
        fast.stats.cycles = 700_000;
        fast.energy = pre_energy::EnergyModel::default()
            .evaluate(&fast.stats, &pre_model::config::SimConfig::haswell_like());
        m.push(slow);
        m.push(fast);
        assert!(m.energy_savings(Workload::LbmLike, Technique::Pre).unwrap() > 0.0);
    }

    #[test]
    fn matrix_run_into_result_surfaces_first_failure() {
        let complete = MatrixRun {
            matrix: EvaluationMatrix::new(),
            failures: Vec::new(),
            cells: 0,
        };
        assert!(complete.is_complete());
        assert!(complete.into_result().is_ok());

        let failed = MatrixRun {
            matrix: EvaluationMatrix::new(),
            failures: vec![CellFailure {
                index: 2,
                workload: Workload::LbmLike,
                technique: Technique::Pre,
                error: SimError::Panic {
                    detail: "boom".to_string(),
                },
            }],
            cells: 3,
        };
        assert!(!failed.is_complete());
        let failure = &failed.failures[0];
        assert!(failure.to_string().contains("lbm-like_pre"));
        assert!(matches!(
            failed.into_result(),
            Err(SimError::Panic { detail }) if detail == "boom"
        ));
    }
}
