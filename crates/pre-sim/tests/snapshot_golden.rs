//! Golden bit-identity tests for the checkpoint/cache layer.
//!
//! The contract of warm-up snapshots and the result cache is *exactness*:
//! forking a shared snapshot, restoring a serialized snapshot, or answering
//! from the cache must be bit-identical to doing the work from scratch —
//! never "close enough". These tests pin that contract across the mixed
//! workload matrix, every technique and both scheduler implementations.

use pre_core::{OooCore, WarmedState};
use pre_model::config::SimConfig;
use pre_model::snapshot::SimSnapshot;
use pre_runahead::Technique;
use pre_sim::experiments::Suite;
use pre_sim::runner::{run_one, RunSpec};
use pre_sim::stores;
use pre_workloads::{Workload, WorkloadParams};

const BUDGET: u64 = 1_500;
const WARMUP: u64 = 800;

fn golden_params() -> WorkloadParams {
    WorkloadParams::short(400)
}

/// Runs `spec`'s cell from a *freshly captured* snapshot, bypassing the
/// global stores entirely: capture the warm-up, derive the warmed state,
/// build the core, run. This is the "cold end-to-end" reference the
/// store-forked runs must match bit-for-bit.
fn fresh_end_to_end(spec: &RunSpec) -> pre_model::stats::SimStats {
    let program = spec.workload.build(&spec.params);
    let snap = SimSnapshot::capture(&program, spec.warmup_uops);
    let warmed = WarmedState::build(&spec.config, &snap.trace);
    let mut core = OooCore::from_snapshot(&spec.config, &program, spec.technique, &snap, &warmed)
        .expect("valid configuration");
    core.run(spec.max_uops, spec.max_cycles);
    core.stats().clone()
}

#[test]
fn snapshot_fork_matches_cold_capture_across_matrix_and_schedulers() {
    for reference_scheduler in [false, true] {
        let mut config = SimConfig::haswell_like();
        config.core.reference_scheduler = reference_scheduler;
        for (workload, technique) in Suite::Mixed.quick_cells() {
            let spec = RunSpec::new(workload, technique)
                .with_budget(BUDGET)
                .with_config(config.clone())
                .with_params(golden_params())
                .with_warmup(WARMUP);
            // First run captures (or reuses) the shared snapshot; the second
            // is guaranteed to fork the stored one.
            let first = run_one(&spec).expect("valid run");
            let second = run_one(&spec).expect("valid run");
            let reference = fresh_end_to_end(&spec);
            let cell = spec.cell_name();
            assert_eq!(
                first.stats, reference,
                "{cell} (ref_sched={reference_scheduler}): store-built run diverged from fresh capture"
            );
            assert_eq!(
                second.stats, reference,
                "{cell} (ref_sched={reference_scheduler}): forked run diverged from fresh capture"
            );
            // Cell-by-cell including the histogram/average fields the struct
            // equality treats loosely: the serialized form must match too.
            assert_eq!(first.stats.to_kv(), reference.to_kv(), "{cell} kv");
            assert_eq!(second.stats.to_kv(), reference.to_kv(), "{cell} kv");
        }
    }
}

#[test]
fn serialized_snapshot_restores_bit_identically() {
    let params = WorkloadParams::short(500);
    let chase: Workload = "asm-chase-large".parse().expect("known workload");
    for workload in [Workload::LbmLike, chase] {
        let program = workload.build(&params);
        let snap = SimSnapshot::capture(&program, WARMUP);
        let restored = SimSnapshot::from_text(&snap.to_text()).expect("roundtrips");
        assert_eq!(restored, snap);
        let config = SimConfig::haswell_like();
        for technique in Technique::ALL {
            let run = |s: &SimSnapshot| {
                let warmed = WarmedState::build(&config, &s.trace);
                let mut core = OooCore::from_snapshot(&config, &program, technique, s, &warmed)
                    .expect("valid configuration");
                core.run(BUDGET, 1_000_000);
                core.stats().clone()
            };
            let a = run(&snap);
            let b = run(&restored);
            assert_eq!(a.to_kv(), b.to_kv(), "{workload:?}/{technique:?}");
        }
    }
}

#[test]
fn cache_hit_is_byte_identical_to_the_miss_that_filled_it() {
    // Distinct params keep this test's cache keys disjoint from the other
    // tests (the stores are process-global and tests run concurrently).
    let params = WorkloadParams {
        iterations: 777,
        ..WorkloadParams::default()
    };
    let chase: Workload = "asm-chase-large".parse().expect("known workload");
    for (workload, technique) in [
        (Workload::LbmLike, Technique::PreEmq),
        (chase, Technique::Runahead),
        (Workload::ComputeBound, Technique::OutOfOrder),
    ] {
        let spec = RunSpec::new(workload, technique)
            .with_budget(BUDGET)
            .with_params(params)
            .with_warmup(WARMUP)
            .with_result_cache(true);
        let miss = run_one(&spec).expect("valid run");
        assert!(!miss.cache_hit, "first run must simulate");
        let hit = run_one(&spec).expect("valid run");
        assert!(hit.cache_hit, "second run must answer from cache");
        // Byte-identical: the serialized cache-file form of both results is
        // the same string, and every stats field matches.
        let program = spec.workload.build(&spec.params);
        let (_, desc) = stores::result_key(&spec, &program);
        assert_eq!(
            stores::result_to_text(&desc, &hit),
            stores::result_to_text(&desc, &miss),
            "{}: cache hit differs from the miss that filled it",
            spec.cell_name()
        );
        assert_eq!(hit.stats, miss.stats);
        assert_eq!(hit.energy, miss.energy);
    }
}
