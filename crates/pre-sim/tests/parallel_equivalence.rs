//! The parallel evaluation matrix must be a pure speedup: same cells, same
//! order, bit-identical statistics as the serial reference path.

use pre_model::config::SimConfig;
use pre_runahead::Technique;
use pre_sim::matrix::EvaluationMatrix;
use pre_workloads::{Workload, WorkloadParams};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

const WORKLOADS: [Workload; 2] = [Workload::LbmLike, Workload::McfLike];
const TECHNIQUES: [Technique; 2] = [Technique::OutOfOrder, Technique::Pre];

/// Serializes the tests in this binary: one of them mutates the
/// process-global `PRE_THREADS` variable, which `pre-par` reads on every
/// call, so concurrent tests could otherwise observe a serial pool and pass
/// vacuously.
static ENV_LOCK: Mutex<()> = Mutex::new(());

/// A tiny 2×2 (workload × technique) matrix runs to completion and yields
/// identical statistics whether run serially or in parallel.
#[test]
fn parallel_matrix_matches_serial_bit_for_bit() {
    let _guard = ENV_LOCK.lock().unwrap();
    let config = SimConfig::haswell_like();
    let params = WorkloadParams::default();

    let serial =
        EvaluationMatrix::run_serial(&WORKLOADS, &TECHNIQUES, &config, &params, 4_000, |_| {})
            .expect("serial matrix runs");
    let parallel = EvaluationMatrix::run(&WORKLOADS, &TECHNIQUES, &config, &params, 4_000, |_| {})
        .expect("parallel matrix runs");

    assert_eq!(serial.results().len(), 4);
    assert_eq!(parallel.results().len(), 4);
    for (s, p) in serial.results().iter().zip(parallel.results()) {
        assert_eq!(s.workload, p.workload, "cell order must match");
        assert_eq!(s.technique, p.technique, "cell order must match");
        assert_eq!(
            s.stats, p.stats,
            "{}/{:?} diverged",
            s.workload, s.technique
        );
        assert_eq!(
            s.energy.total_mj().to_bits(),
            p.energy.total_mj().to_bits(),
            "energy must be bit-identical"
        );
        assert_eq!(s.deadlocked, p.deadlocked);
    }

    // Derived figure metrics agree exactly too.
    for &w in &WORKLOADS {
        assert_eq!(
            serial.speedup(w, Technique::Pre).map(f64::to_bits),
            parallel.speedup(w, Technique::Pre).map(f64::to_bits),
        );
    }
}

/// The progress callback fires exactly once per cell under both paths.
#[test]
fn progress_fires_once_per_cell() {
    let _guard = ENV_LOCK.lock().unwrap();
    let config = SimConfig::haswell_like();
    let params = WorkloadParams::default();
    let count = AtomicUsize::new(0);
    EvaluationMatrix::run(&WORKLOADS, &TECHNIQUES, &config, &params, 2_000, |_| {
        count.fetch_add(1, Ordering::Relaxed);
    })
    .expect("matrix runs");
    assert_eq!(count.load(Ordering::Relaxed), 4);
}

/// Forcing a single worker thread must not change results either (the
/// parallel path degenerates to the serial one).
#[test]
fn single_threaded_parallel_path_is_identical() {
    // `PRE_THREADS` is read per call inside pre-par and is process-global;
    // ENV_LOCK keeps the other tests from seeing it.
    let _guard = ENV_LOCK.lock().unwrap();
    std::env::set_var("PRE_THREADS", "1");
    let config = SimConfig::haswell_like();
    let params = WorkloadParams::default();
    let one = EvaluationMatrix::run(
        &[Workload::LbmLike],
        &[Technique::Pre],
        &config,
        &params,
        2_000,
        |_| {},
    )
    .expect("matrix runs");
    std::env::remove_var("PRE_THREADS");
    let reference = EvaluationMatrix::run_serial(
        &[Workload::LbmLike],
        &[Technique::Pre],
        &config,
        &params,
        2_000,
        |_| {},
    )
    .expect("serial matrix runs");
    assert_eq!(one.results()[0].stats, reference.results()[0].stats);
}
