//! Golden tests for the tracing subsystem: tracers observe, never steer.
//!
//! The load-bearing guarantee of `pre-trace` is that attaching a tracer
//! cannot change simulation results: `SimStats` must be bit-identical with
//! tracing on and off for every cell of the mixed matrix, under all five
//! techniques, on both scheduler paths (event-driven and the reference
//! scan-based escape hatch). On top of that, traced runs must be
//! deterministic (byte-identical files across repeats) and the emitted
//! streams must be well-formed (pipeview validates, Chrome JSON parses,
//! the commit log round-trips).

use pre_model::config::SimConfig;
use pre_runahead::Technique;
use pre_sim::experiments::Suite;
use pre_sim::runner::{run_one, run_one_traced, RunSpec};
use pre_trace::commitlog::CommitLogReader;
use pre_trace::{chrome, pipeview, TraceSession, TraceSpec};
use pre_workloads::Workload;
use std::fs;
use std::path::PathBuf;

/// A scratch directory unique to this process and `tag`, wiped on entry.
fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pre-trace-golden-{}-{tag}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn full_spec(dir: &std::path::Path) -> TraceSpec {
    TraceSpec {
        dir: dir.to_path_buf(),
        ..TraceSpec::default()
    }
}

#[test]
fn stats_bit_identical_with_tracing_on_and_off() {
    let dir = tmp_dir("golden");
    let trace_spec = full_spec(&dir);
    for reference_scheduler in [false, true] {
        let mut config = SimConfig::haswell_like();
        config.core.reference_scheduler = reference_scheduler;
        for (workload, technique) in Suite::Mixed.cells() {
            let spec = RunSpec::new(workload, technique)
                .with_budget(2_000)
                .with_config(config.clone());
            let plain = run_one(&spec).expect("untraced run");
            let cell = format!(
                "{}-{}",
                if reference_scheduler { "ref" } else { "evt" },
                spec.cell_name()
            );
            let session = TraceSession::create(&trace_spec, &cell).expect("trace files");
            let (traced, tracer) = run_one_traced(&spec, Box::new(session)).expect("traced run");
            let session = tracer
                .into_any()
                .downcast::<TraceSession>()
                .expect("tracer is the session attached above");
            assert!(
                session.io_error().is_none(),
                "trace writes failed for {cell}: {:?}",
                session.io_error()
            );
            assert_eq!(
                plain.stats, traced.stats,
                "tracing changed SimStats for {cell}"
            );
            assert_eq!(plain.deadlocked, traced.deadlocked);
        }
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn traced_runs_are_byte_identical_across_repeats() {
    let base = tmp_dir("determinism");
    let mut snapshots: Vec<Vec<(String, Vec<u8>)>> = Vec::new();
    for repeat in 0..2 {
        let dir = base.join(format!("run{repeat}"));
        let spec = RunSpec::new(Workload::LbmLike, Technique::PreEmq)
            .with_budget(5_000)
            .with_trace(full_spec(&dir));
        run_one(&spec).expect("traced run");
        let mut files: Vec<(String, Vec<u8>)> = fs::read_dir(&dir)
            .expect("trace dir exists")
            .map(|entry| {
                let entry = entry.expect("dir entry");
                let name = entry.file_name().to_string_lossy().into_owned();
                let bytes = fs::read(entry.path()).expect("trace file readable");
                (name, bytes)
            })
            .collect();
        files.sort_by(|a, b| a.0.cmp(&b.0));
        snapshots.push(files);
    }
    let (first, second) = (&snapshots[0], &snapshots[1]);
    assert_eq!(first.len(), 4, "all four streams written");
    assert_eq!(first.len(), second.len());
    for ((name_a, bytes_a), (name_b, bytes_b)) in first.iter().zip(second) {
        assert_eq!(name_a, name_b);
        assert!(
            bytes_a == bytes_b,
            "trace file {name_a} differs between identical runs"
        );
    }
    let _ = fs::remove_dir_all(&base);
}

#[test]
fn emitted_streams_are_well_formed_for_every_mode() {
    let dir = tmp_dir("streams");
    let trace_spec = full_spec(&dir);
    // asm-box-blur enters runahead readily under both RA and PRE+EMQ.
    let workload = Workload::ASM_SUITE[3];
    for technique in [
        Technique::OutOfOrder,
        Technique::Runahead,
        Technique::PreEmq,
    ] {
        let spec = RunSpec::new(workload, technique).with_budget(6_000);
        let session = TraceSession::create(&trace_spec, &spec.cell_name()).expect("trace files");
        let (result, tracer) = run_one_traced(&spec, Box::new(session)).expect("traced run");
        let session = tracer
            .into_any()
            .downcast::<TraceSession>()
            .expect("tracer is the session attached above");
        assert!(session.io_error().is_none());
        let path = |ext: &str| dir.join(format!("{}.{ext}", spec.cell_name()));

        // O3PipeView: structurally valid, and exactly the committed uops
        // carry a retire stamp.
        let text = fs::read_to_string(path("pipeview")).expect("pipeview file");
        let (records, retired) =
            pipeview::validate(&text).unwrap_or_else(|e| panic!("{technique}: {e}"));
        assert!(records >= retired);
        assert_eq!(
            retired as u64, result.stats.committed_uops,
            "{technique}: every committed uop retires exactly once in the pipeview stream"
        );

        // Chrome JSON: parses, and runahead techniques produced interval
        // spans matching the interval count in the statistics.
        let json = fs::read_to_string(path("trace.json")).expect("chrome file");
        let events = chrome::parse(&json).unwrap_or_else(|e| panic!("{technique}: {e}"));
        assert!(!events.is_empty());
        let interval_spans = events
            .iter()
            .filter(|e| e.ph == 'X' && e.cat == "interval")
            .count() as u64;
        assert_eq!(
            interval_spans, result.stats.runahead_exits,
            "{technique}: one Chrome span per completed runahead interval"
        );
        if technique != Technique::OutOfOrder {
            assert!(
                result.stats.runahead_entries > 0,
                "{technique}: no intervals"
            );
        }

        // Committed-stream binary log: round-trips and mirrors the commit
        // count.
        let bytes = fs::read(path("commit.bin")).expect("commit log");
        let reader = CommitLogReader::new(&bytes).expect("valid commit log");
        assert_eq!(reader.len() as u64, result.stats.committed_uops);
        for record in reader.records() {
            record.expect("decodable commit record");
        }

        // Time-series CSV: header plus at least one sampled window.
        let csv = fs::read_to_string(path("timeseries.csv")).expect("timeseries file");
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some(pre_trace::timeseries::CSV_HEADER));
        assert!(lines.next().is_some(), "{technique}: no samples recorded");
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn ring_buffer_mode_bounds_the_pipeview_stream() {
    let dir = tmp_dir("ring");
    let trace_spec = TraceSpec {
        dir: dir.to_path_buf(),
        pipeview: true,
        chrome: false,
        timeseries: None,
        commit: false,
        ring: Some(64),
        ..TraceSpec::default()
    };
    let spec = RunSpec::new(Workload::LbmLike, Technique::Pre).with_budget(5_000);
    let session = TraceSession::create(&trace_spec, &spec.cell_name()).expect("trace files");
    let (_, tracer) = run_one_traced(&spec, Box::new(session)).expect("traced run");
    let session = tracer
        .into_any()
        .downcast::<TraceSession>()
        .expect("tracer is the session attached above");
    assert!(session.io_error().is_none());
    let text = fs::read_to_string(dir.join(format!("{}.pipeview", spec.cell_name())))
        .expect("pipeview file");
    let (records, _) = pipeview::validate(&text).expect("valid ring-mode stream");
    assert!(records <= 64, "ring mode must cap the record count");
    assert!(records > 0, "ring mode still records the tail");
    let _ = fs::remove_dir_all(&dir);
}
