//! Golden guarantees of the sampled-simulation subsystem: the profiling and
//! clustering passes are deterministic (including under `PRE_THREADS`
//! variation), and the extrapolated IPC of a sampled run stays within 5% of
//! the full detailed run on the long asm kernels under every runahead
//! flavour the paper compares.

use pre_model::profile::{cluster_intervals, profile_intervals};
use pre_runahead::Technique;
use pre_sim::runner::{run_one, RunSpec};
use pre_sim::sample::SampleSpec;
use pre_sim::stores::clear_stores;
use pre_workloads::{Workload, WorkloadParams};
use std::sync::Mutex;

/// Serializes the tests in this binary: they mutate the process-global
/// `PRE_THREADS` variable and the process-global result/snapshot stores.
static ENV_LOCK: Mutex<()> = Mutex::new(());

fn workloads() -> [Workload; 2] {
    [
        "asm-chase-large".parse().expect("workload name"),
        "asm-box-blur".parse().expect("workload name"),
    ]
}
const TECHNIQUES: [Technique; 3] = [Technique::OutOfOrder, Technique::Runahead, Technique::Pre];

/// Budget of the error-bound comparison. Long enough that sampling skips
/// most of the execution, short enough to keep the test cheap.
const BUDGET: u64 = 60_000;

/// Sampling parameters of the error-bound comparison (also exercised by the
/// CI sampling smoke).
const SPEC: SampleSpec = SampleSpec {
    clusters: 6,
    interval_uops: 6_000,
};

fn with_threads(threads: Option<&str>, f: impl FnOnce()) {
    let saved = std::env::var("PRE_THREADS").ok();
    match threads {
        Some(n) => std::env::set_var("PRE_THREADS", n),
        None => std::env::remove_var("PRE_THREADS"),
    }
    f();
    match saved {
        Some(v) => std::env::set_var("PRE_THREADS", v),
        None => std::env::remove_var("PRE_THREADS"),
    }
}

/// The profiling pass and the clusterer are pure functions of the program:
/// repeated invocations produce byte-identical BBVs and identical cluster
/// assignments, regardless of the worker-pool width (both passes are
/// serial by construction).
#[test]
fn bbv_profile_and_clustering_are_deterministic() {
    let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let params = WorkloadParams::default();
    for &workload in &workloads() {
        let program = workload.build(&params);
        let reference = profile_intervals(&program, SPEC.interval_uops, BUDGET, 0);
        let ref_clusters = cluster_intervals(&reference, SPEC.clusters, 0);
        assert!(
            reference.intervals.len() > 1,
            "{workload}: the budget must span several intervals"
        );
        for threads in ["1", "4"] {
            with_threads(Some(threads), || {
                let repeat = profile_intervals(&program, SPEC.interval_uops, BUDGET, 0);
                assert_eq!(
                    repeat.intervals.len(),
                    reference.intervals.len(),
                    "{workload}: interval count diverged (PRE_THREADS={threads})"
                );
                for (a, b) in repeat.intervals.iter().zip(&reference.intervals) {
                    assert_eq!(a.start_uop, b.start_uop);
                    assert_eq!(a.len_uops, b.len_uops);
                    assert_eq!(
                        a.bbv.to_text(),
                        b.bbv.to_text(),
                        "{workload}: BBV of interval {} diverged (PRE_THREADS={threads})",
                        a.index
                    );
                }
                let clusters = cluster_intervals(&repeat, SPEC.clusters, 0);
                assert_eq!(
                    clusters.assignments, ref_clusters.assignments,
                    "{workload}: cluster assignments diverged (PRE_THREADS={threads})"
                );
                assert_eq!(clusters.representatives, ref_clusters.representatives);
            });
        }
    }
}

/// A sampled run is deterministic end to end: the extrapolated statistics
/// are bit-identical across repeats and across worker-pool widths.
#[test]
fn sampled_runs_are_thread_count_invariant() {
    let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let workload: Workload = "asm-chase-large".parse().expect("workload name");
    let mut spec = RunSpec::new(workload, Technique::Pre).with_budget(BUDGET);
    spec.sample = Some(SPEC);

    let mut reference = None;
    for threads in [None, Some("1"), Some("4")] {
        with_threads(threads, || {
            clear_stores();
            let result = run_one(&spec).expect("sampled run");
            let meta = result.sample.as_ref().expect("sampling metadata");
            assert!(meta.intervals_simulated() >= 1);
            match &reference {
                None => reference = Some(result),
                Some(r) => {
                    assert_eq!(
                        r.stats, result.stats,
                        "sampled stats diverged under PRE_THREADS={threads:?}"
                    );
                    assert_eq!(r.sample, result.sample);
                }
            }
        });
    }
}

/// The error-bound golden: on every (long asm kernel) × (OoO, RA, PRE)
/// cell, the sampled IPC estimate lands within 5% of the full detailed
/// run's IPC while simulating only a fraction of the budget in detail.
#[test]
fn sampled_ipc_is_within_five_percent_of_full_runs() {
    let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    clear_stores();
    for &workload in &workloads() {
        for &technique in &TECHNIQUES {
            let full_spec = RunSpec::new(workload, technique).with_budget(BUDGET);
            let full = run_one(&full_spec).expect("full run");
            let mut sampled_spec = RunSpec::new(workload, technique).with_budget(BUDGET);
            sampled_spec.sample = Some(SPEC);
            let sampled = run_one(&sampled_spec).expect("sampled run");

            let meta = sampled.sample.as_ref().expect("sampling metadata");
            assert!(
                meta.simulated_uops < meta.total_uops,
                "{workload}/{technique:?}: sampling must skip detailed work \
                 (simulated {} of {})",
                meta.simulated_uops,
                meta.total_uops
            );
            let error = (sampled.ipc() - full.ipc()).abs() / full.ipc();
            eprintln!(
                "{workload}/{technique:?}: full {:.4}  sampled {:.4}  error {:.2}%",
                full.ipc(),
                sampled.ipc(),
                error * 100.0
            );
            assert!(
                error <= 0.05,
                "{workload}/{technique:?}: sampled IPC {:.4} vs full {:.4} \
                 — error {:.2}% exceeds the 5% bound ({})",
                sampled.ipc(),
                full.ipc(),
                error * 100.0,
                meta.summary()
            );
        }
    }
}
