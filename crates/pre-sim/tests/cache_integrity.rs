//! Disk-cache integrity: corrupt and truncated entries are quarantined and
//! degrade to a cache miss whose recomputation is bit-identical, and
//! concurrent writers never produce a torn read.
//!
//! These tests pass explicit cache directories (no `PRE_CACHE_DIR`), so they
//! don't touch process environment; they still share the global in-memory
//! stores, so they serialize on one lock and use per-test cache keys.

use pre_model::config::SimConfig;
use pre_runahead::Technique;
use pre_sim::runner::{run_one, RunResult, RunSpec};
use pre_sim::stores::{
    clear_stores, result_key, result_lookup, result_store, try_result_store_disk,
};
use pre_workloads::{Workload, WorkloadParams};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// Serializes tests in this file: they all clear the process-wide in-memory
/// stores to force the disk path.
static STORE_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    STORE_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn spec_for(workload: Workload, budget: u64) -> RunSpec {
    RunSpec::new(workload, Technique::Pre)
        .with_budget(budget)
        .with_config(SimConfig::small_for_tests())
        .with_params(WorkloadParams::short(50))
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pre-integrity-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn cache_file(dir: &Path, key: u64) -> PathBuf {
    dir.join(format!("result_{key:016x}.txt"))
}

fn populate(spec: &RunSpec, dir: &Path) -> (u64, String, RunResult) {
    let program = spec.workload.build(&spec.params);
    let (key, desc) = result_key(spec, &program);
    let baseline = run_one(spec).expect("baseline run");
    result_store(key, &desc, &baseline, Some(dir));
    assert!(cache_file(dir, key).exists(), "entry persisted");
    (key, desc, baseline)
}

/// Damages the entry, then asserts: lookup misses, the file was quarantined
/// to `*.corrupt`, and a recomputation is bit-identical to the baseline.
fn assert_quarantine_and_recompute(
    spec: &RunSpec,
    dir: &Path,
    key: u64,
    desc: &str,
    baseline: &RunResult,
    damage: impl FnOnce(&Path),
) {
    let path = cache_file(dir, key);
    damage(&path);
    clear_stores(); // force the disk path
    assert!(
        result_lookup(key, desc, Some(dir)).is_none(),
        "damaged entry reads as a miss"
    );
    assert!(!path.exists(), "damaged entry no longer matches lookups");
    let corrupt = PathBuf::from(format!("{}.corrupt", path.display()));
    assert!(corrupt.exists(), "damaged entry was quarantined");
    let recomputed = run_one(spec).expect("recompute after quarantine");
    assert_eq!(recomputed.stats, baseline.stats);
    assert_eq!(
        recomputed.stats.to_kv(),
        baseline.stats.to_kv(),
        "recomputation is bit-identical"
    );
    assert_eq!(recomputed.energy, baseline.energy);
}

#[test]
fn corrupt_entry_is_quarantined_and_recomputed_bit_identically() {
    let _guard = lock();
    let dir = fresh_dir("corrupt");
    let spec = spec_for(Workload::ComputeBound, 2_000);
    let (key, desc, baseline) = populate(&spec, &dir);
    assert_quarantine_and_recompute(&spec, &dir, key, &desc, &baseline, |path| {
        let mut bytes = std::fs::read(path).expect("entry readable");
        let mid = bytes.len() / 2;
        for b in bytes.iter_mut().skip(mid).take(8) {
            *b ^= 0xff;
        }
        std::fs::write(path, bytes).expect("corruption written");
    });
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn truncated_entry_is_quarantined_and_recomputed_bit_identically() {
    let _guard = lock();
    let dir = fresh_dir("truncate");
    let spec = spec_for(Workload::McfLike, 2_000);
    let (key, desc, baseline) = populate(&spec, &dir);
    assert_quarantine_and_recompute(&spec, &dir, key, &desc, &baseline, |path| {
        let bytes = std::fs::read(path).expect("entry readable");
        std::fs::write(path, &bytes[..bytes.len() / 3]).expect("truncation written");
    });
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unframed_v1_era_entry_is_quarantined_not_trusted() {
    let _guard = lock();
    let dir = fresh_dir("v1");
    let spec = spec_for(Workload::ComputeBound, 1_500);
    let (key, desc, baseline) = populate(&spec, &dir);
    assert_quarantine_and_recompute(&spec, &dir, key, &desc, &baseline, |path| {
        // Strip the integrity header, leaving a pre-header-era bare body.
        let text = std::fs::read_to_string(path).expect("entry readable");
        let (_, body) = text.split_once('\n').expect("framed entry");
        std::fs::write(path, body).expect("v1-style body written");
    });
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn quarantined_entry_heals_on_next_store() {
    let _guard = lock();
    let dir = fresh_dir("heal");
    let spec = spec_for(Workload::ComputeBound, 1_000);
    let (key, desc, baseline) = populate(&spec, &dir);
    let path = cache_file(&dir, key);
    std::fs::write(&path, "garbage").expect("damage written");
    clear_stores();
    assert!(result_lookup(key, &desc, Some(&dir)).is_none());
    // Re-store (as a recomputing run would) and read it back from disk.
    result_store(key, &desc, &baseline, Some(&dir));
    clear_stores();
    let hit = result_lookup(key, &desc, Some(&dir)).expect("healed entry hits");
    assert!(hit.cache_hit);
    assert_eq!(hit.stats.to_kv(), baseline.stats.to_kv());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn concurrent_writers_never_produce_a_torn_read() {
    let _guard = lock();
    let dir = fresh_dir("race");
    let spec = spec_for(Workload::LbmLike, 1_500);
    let program = spec.workload.build(&spec.params);
    let (key, desc) = result_key(&spec, &program);
    let baseline = run_one(&spec).expect("baseline run");
    let expected_kv = baseline.stats.to_kv();

    let dir = Arc::new(dir);
    let stop = Arc::new(AtomicBool::new(false));
    let mut writers = Vec::new();
    for _ in 0..2 {
        let dir = Arc::clone(&dir);
        let stop = Arc::clone(&stop);
        let baseline = baseline.clone();
        let desc = desc.clone();
        writers.push(std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                try_result_store_disk(&dir, key, &desc, &baseline).expect("disk store");
            }
        }));
    }

    // Wait for the first store to land so the racing reads below actually
    // overlap the writers (under load the reader loop can otherwise finish
    // before the writer threads are even scheduled).
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    while !cache_file(&dir, key).exists() {
        assert!(
            std::time::Instant::now() < deadline,
            "writers never produced an entry"
        );
        std::thread::yield_now();
    }

    // The reader bypasses the in-memory store each iteration: every disk
    // read racing the two writers must see either no file or one whole,
    // checksum-valid entry — never a torn write.
    let mut hits = 0;
    for _ in 0..300 {
        clear_stores();
        if let Some(hit) = result_lookup(key, &desc, Some(&dir)) {
            assert_eq!(hit.stats.to_kv(), expected_kv, "read result is whole");
            hits += 1;
        }
    }
    stop.store(true, Ordering::Relaxed);
    for w in writers {
        w.join().expect("writer thread");
    }
    assert!(hits > 0, "reader observed the entry at least once");
    let corrupt = PathBuf::from(format!("{}.corrupt", cache_file(&dir, key).display()));
    assert!(
        !corrupt.exists(),
        "no reader ever quarantined a half-written entry"
    );
    let _ = std::fs::remove_dir_all(dir.as_path());
}
