//! End-to-end fault injection through `PRE_FAULT`: panicking cells are
//! isolated (surviving cells bit-identical to a clean serial run), injected
//! cache corruption and snapshot truncation degrade to quarantine +
//! recompute, and the binaries report partial failure through their exit
//! codes.

use pre_model::config::SimConfig;
use pre_model::error::SimError;
use pre_runahead::Technique;
use pre_sim::matrix::EvaluationMatrix;
use pre_sim::runner::{run_one, RunSpec};
use pre_sim::stores::{clear_stores, snapshot_for_with_dir};
use pre_sim::sweep::Sweep;
use pre_workloads::{Workload, WorkloadParams};
use std::path::PathBuf;
use std::process::Command;
use std::sync::Mutex;

/// Serializes the in-process tests: they mutate process-wide environment
/// (`PRE_FAULT`, `PRE_CACHE_DIR`, `PRE_THREADS`) and the global stores.
static ENV_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// RAII guard: sets env vars for one test, restores prior values after.
struct EnvGuard {
    saved: Vec<(&'static str, Option<std::ffi::OsString>)>,
}

impl EnvGuard {
    fn set(pairs: &[(&'static str, Option<&str>)]) -> Self {
        let mut saved = Vec::new();
        for &(name, value) in pairs {
            saved.push((name, std::env::var_os(name)));
            match value {
                Some(v) => std::env::set_var(name, v),
                None => std::env::remove_var(name),
            }
        }
        EnvGuard { saved }
    }
}

impl Drop for EnvGuard {
    fn drop(&mut self) {
        for (name, value) in self.saved.drain(..) {
            match value {
                Some(v) => std::env::set_var(name, v),
                None => std::env::remove_var(name),
            }
        }
    }
}

fn small_spec(workload: Workload, technique: Technique) -> RunSpec {
    RunSpec::new(workload, technique)
        .with_budget(1_500)
        .with_config(SimConfig::small_for_tests())
        .with_params(WorkloadParams::short(50))
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pre-fault-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn matrix_isolates_a_panicking_cell_and_survivors_match_serial() {
    let _guard = lock();
    let specs: Vec<RunSpec> = [
        (Workload::ComputeBound, Technique::OutOfOrder),
        (Workload::ComputeBound, Technique::Pre),
        (Workload::McfLike, Technique::OutOfOrder),
        (Workload::McfLike, Technique::Pre),
    ]
    .into_iter()
    .map(|(w, t)| small_spec(w, t))
    .collect();

    // Clean serial reference, before arming any fault.
    let _env = EnvGuard::set(&[("PRE_FAULT", None), ("PRE_CACHE_DIR", None)]);
    let serial: Vec<_> = specs
        .iter()
        .map(|s| run_one(s).expect("serial run"))
        .collect();

    let _fault = EnvGuard::set(&[("PRE_FAULT", Some("panic:cell=1"))]);
    let run = EvaluationMatrix::run_specs_isolated(&specs, |_| {});
    assert_eq!(run.cells, 4);
    assert_eq!(run.failures.len(), 1, "exactly the faulted cell failed");
    let failure = &run.failures[0];
    assert_eq!(failure.index, 1);
    assert!(
        matches!(&failure.error, SimError::Panic { detail } if detail.contains("injected fault")),
        "panic payload surfaced: {}",
        failure.error
    );

    // The three survivors are bit-identical to the serial reference.
    assert_eq!(run.matrix.results().len(), 3);
    for (i, serial_result) in serial.iter().enumerate() {
        if i == 1 {
            continue;
        }
        let survivor = run
            .matrix
            .get(specs[i].workload, specs[i].technique)
            .expect("survivor present");
        assert_eq!(survivor.stats, serial_result.stats);
        assert_eq!(survivor.stats.to_kv(), serial_result.stats.to_kv());
        assert_eq!(survivor.energy, serial_result.energy);
    }
}

#[test]
fn sweep_retries_cover_injected_panics() {
    let _guard = lock();
    let _env = EnvGuard::set(&[("PRE_FAULT", Some("panic:cell=0")), ("PRE_CACHE_DIR", None)]);
    let mut sweep = Sweep::new(Workload::ComputeBound, Technique::OutOfOrder)
        .with_dim("rob=128,192".parse().expect("grid"));
    sweep.budget = 1_500;
    sweep.params = WorkloadParams::short(50);
    sweep.base_config = SimConfig::small_for_tests();
    sweep.max_retries = 2;
    let run = sweep.run_isolated(|_| {});
    assert_eq!(run.total, 2);
    assert_eq!(run.points.len(), 1, "the un-faulted point completed");
    assert_eq!(run.failures.len(), 1);
    let failure = &run.failures[0];
    assert_eq!(failure.index, 0);
    assert_eq!(
        failure.attempts, 3,
        "1 attempt + 2 retries, each covering the panic"
    );
    assert!(matches!(failure.error, SimError::Panic { .. }));
}

#[test]
fn sweep_fail_fast_skips_points_after_the_first_failure() {
    let _guard = lock();
    // PRE_THREADS=1 makes the launch order (and so the skip set)
    // deterministic.
    let _env = EnvGuard::set(&[
        ("PRE_FAULT", Some("panic:cell=0")),
        ("PRE_THREADS", Some("1")),
        ("PRE_CACHE_DIR", None),
    ]);
    let mut sweep = Sweep::new(Workload::ComputeBound, Technique::OutOfOrder)
        .with_dim("rob=128,192,256".parse().expect("grid"));
    sweep.budget = 1_500;
    sweep.params = WorkloadParams::short(50);
    sweep.base_config = SimConfig::small_for_tests();
    sweep.fail_fast = true;
    let run = sweep.run_isolated(|_| {});
    assert_eq!(run.points.len(), 0);
    assert_eq!(run.failures.len(), 3);
    assert!(matches!(run.failures[0].error, SimError::Panic { .. }));
    for skipped in &run.failures[1..] {
        assert!(matches!(skipped.error, SimError::Skipped));
        assert_eq!(skipped.attempts, 0);
    }
    // The all-or-nothing wrapper surfaces the real failure, not a skip.
    assert!(matches!(run.into_result(), Err(SimError::Panic { .. })));
}

#[test]
fn corrupt_cache_fault_quarantines_then_recomputes_bit_identically() {
    let _guard = lock();
    let dir = fresh_dir("corrupt-cache");
    let dir_str = dir.display().to_string();
    let spec = small_spec(Workload::ComputeBound, Technique::Pre).with_result_cache(true);

    // First run writes a cache entry and the armed fault corrupts it.
    let _env = EnvGuard::set(&[
        ("PRE_CACHE_DIR", Some(dir_str.as_str())),
        ("PRE_FAULT", Some("corrupt-cache:key=*")),
    ]);
    clear_stores();
    let first = run_one(&spec).expect("first run");
    assert!(!first.cache_hit);

    // Disarm and drop the in-memory copy: the next run must detect the
    // corruption, quarantine the file and recompute identically.
    let _disarm = EnvGuard::set(&[("PRE_FAULT", None)]);
    clear_stores();
    let second = run_one(&spec).expect("recompute");
    assert!(!second.cache_hit, "corrupt entry did not serve a hit");
    assert_eq!(second.stats.to_kv(), first.stats.to_kv());
    let corrupt_files = std::fs::read_dir(&dir)
        .expect("cache dir")
        .filter_map(|e| e.ok())
        .filter(|e| e.path().to_string_lossy().ends_with(".corrupt"))
        .count();
    assert_eq!(corrupt_files, 1, "the damaged entry was quarantined");

    // The recompute re-stored a good entry: third run is a disk hit.
    clear_stores();
    let third = run_one(&spec).expect("cached run");
    assert!(third.cache_hit);
    assert_eq!(third.stats.to_kv(), first.stats.to_kv());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn truncate_snapshot_fault_falls_back_to_a_cold_capture() {
    let _guard = lock();
    let dir = fresh_dir("truncate-snap");
    let program = Workload::ComputeBound.build(&WorkloadParams::short(80));

    let _env = EnvGuard::set(&[
        ("PRE_FAULT", Some("truncate-snapshot")),
        ("PRE_CACHE_DIR", None),
    ]);
    clear_stores();
    let reference = snapshot_for_with_dir(&program, 300, 300, Some(&dir));

    let _disarm = EnvGuard::set(&[("PRE_FAULT", None)]);
    clear_stores();
    let refetched = snapshot_for_with_dir(&program, 300, 300, Some(&dir));
    assert_eq!(
        refetched.to_text(),
        reference.to_text(),
        "cold fallback is bit-identical to the reference capture"
    );
    let corrupt_files = std::fs::read_dir(&dir)
        .expect("cache dir")
        .filter_map(|e| e.ok())
        .filter(|e| e.path().to_string_lossy().ends_with(".corrupt"))
        .count();
    assert_eq!(corrupt_files, 1, "the truncated snapshot was quarantined");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn quick_check_subprocess_isolates_a_panicking_cell() {
    // Subprocess tests set env only on the child, so no ENV_LOCK needed.
    let clean = Command::new(env!("CARGO_BIN_EXE_quick_check"))
        .arg("1500")
        .env_remove("PRE_FAULT")
        .env_remove("PRE_CACHE_DIR")
        .output()
        .expect("quick_check runs");
    assert!(clean.status.success(), "clean run exits 0");
    let clean_stdout = String::from_utf8_lossy(&clean.stdout).to_string();

    let faulted = Command::new(env!("CARGO_BIN_EXE_quick_check"))
        .arg("1500")
        .env("PRE_FAULT", "panic:cell=1")
        .env_remove("PRE_CACHE_DIR")
        .output()
        .expect("quick_check runs");
    assert_eq!(
        faulted.status.code(),
        Some(1),
        "partial failure surfaces as exit code 1"
    );
    let stdout = String::from_utf8_lossy(&faulted.stdout).to_string();
    assert!(
        stdout.contains("FAILED") && stdout.contains("injected fault"),
        "failure reported in output:\n{stdout}"
    );
    // Every surviving row is byte-identical to the clean run's row.
    let surviving: Vec<&str> = stdout.lines().filter(|l| !l.contains("FAILED")).collect();
    assert!(surviving.len() > 2, "other cells still ran:\n{stdout}");
    for line in surviving {
        assert!(
            clean_stdout.contains(line),
            "surviving row matches the clean run: {line}"
        );
    }
    assert_eq!(
        stdout.lines().count(),
        clean_stdout.lines().count(),
        "exactly one row replaced by a failure line"
    );
}

#[test]
fn sweep_subprocess_reports_failures_and_retries() {
    let exe = env!("CARGO_BIN_EXE_sweep");
    let base_args = [
        "--workload",
        "compute-bound",
        "--budget",
        "1500",
        "--grid",
        "rob=128,192",
        "--no-cache",
    ];
    let clean = Command::new(exe)
        .args(base_args)
        .env_remove("PRE_FAULT")
        .env_remove("PRE_CACHE_DIR")
        .output()
        .expect("sweep runs");
    assert!(
        clean.status.success(),
        "clean sweep exits 0: {}",
        String::from_utf8_lossy(&clean.stderr)
    );

    let faulted = Command::new(exe)
        .args(base_args)
        .args(["--max-retries", "1"])
        .env("PRE_FAULT", "panic:cell=1")
        .env_remove("PRE_CACHE_DIR")
        .output()
        .expect("sweep runs");
    assert_eq!(faulted.status.code(), Some(1), "failed grid exits 1");
    let stdout = String::from_utf8_lossy(&faulted.stdout).to_string();
    assert!(
        stdout.contains("FAILED (2 attempts)"),
        "retry count reported:\n{stdout}"
    );
    assert!(
        stdout.contains("1 of 2 points"),
        "surviving point completed:\n{stdout}"
    );
}
