//! Golden equivalence: the event-driven wakeup/select scheduler with
//! quiescent-cycle fast-forward must produce **bit-identical** `SimStats` to
//! the reference (scan-based, cycle-by-cycle) scheduler on every
//! (workload, technique) cell of the mixed matrix — including `iq_wakeups`
//! and the PRDQ/eager-drain counters. The event path may only change how
//! fast the simulator runs, never what it simulates. (The per-interval
//! runahead event log is tracer-routed and covered by `trace_golden`, which
//! re-checks stats identity traced-vs-untraced on both scheduler paths.)

use pre_model::config::SimConfig;
use pre_runahead::Technique;
use pre_sim::experiments::Suite;
use pre_sim::matrix::EvaluationMatrix;
use pre_workloads::WorkloadParams;

fn run_matrix(
    workloads: &[pre_workloads::Workload],
    reference: bool,
    uops: u64,
) -> EvaluationMatrix {
    let mut config = SimConfig::haswell_like();
    config.core.reference_scheduler = reference;
    EvaluationMatrix::run(
        workloads,
        &Technique::ALL,
        &config,
        &WorkloadParams::default(),
        uops,
        |_| {},
    )
    .expect("matrix runs")
}

/// Every cell of the mixed (synthetic + asm) matrix, every technique: the
/// event scheduler and the reference scheduler agree on every statistic,
/// bit for bit.
#[test]
fn event_scheduler_matches_reference_bit_for_bit_on_mixed_matrix() {
    let workloads = Suite::Mixed.workloads();
    let uops = 6_000;
    let event = run_matrix(&workloads, false, uops);
    let reference = run_matrix(&workloads, true, uops);

    assert_eq!(event.results().len(), reference.results().len());
    for (e, r) in event.results().iter().zip(reference.results()) {
        assert_eq!(e.workload, r.workload, "cell order must match");
        assert_eq!(e.technique, r.technique, "cell order must match");
        assert_eq!(
            e.deadlocked, r.deadlocked,
            "{}/{:?}",
            e.workload, e.technique
        );
        assert_eq!(
            e.stats, r.stats,
            "{}/{:?}: event scheduler diverged from reference",
            e.workload, e.technique
        );
        assert_eq!(
            e.energy.total_mj().to_bits(),
            r.energy.total_mj().to_bits(),
            "{}/{:?}: energy must be bit-identical",
            e.workload,
            e.technique
        );
    }
}

/// Longer single-cell runs across contrasting behaviours (LLC-missing
/// dependent chase, branchy integer code, flush-style runahead, and the
/// fast-forward-heavy out-of-order baseline on a permanently LLC-missing
/// kernel) keep the schedulers in lockstep well past the short-budget
/// horizon.
#[test]
fn long_runs_stay_in_lockstep() {
    use pre_sim::runner::{run_one, RunSpec};
    use pre_workloads::Workload;
    let asm_chase_large = *Workload::ASM_SUITE
        .iter()
        .find(|w| w.name() == "asm-chase-large")
        .expect("chase-large kernel present");
    let asm_box_blur = *Workload::ASM_SUITE
        .iter()
        .find(|w| w.name() == "asm-box-blur")
        .expect("box-blur kernel present");
    let asm_struct_chase = *Workload::ASM_SUITE
        .iter()
        .find(|w| w.name() == "asm-struct-chase")
        .expect("struct-chase kernel present");
    let cells = [
        (Workload::McfLike, Technique::Pre),
        (Workload::LbmLike, Technique::Runahead),
        (Workload::GccLike, Technique::RunaheadBuffer),
        (Workload::LibquantumLike, Technique::PreEmq),
        (Workload::ComputeBound, Technique::OutOfOrder),
        (asm_chase_large, Technique::OutOfOrder),
        (asm_box_blur, Technique::Pre),
        // Sub-word dependent chains (byte-granular LSQ + FuncMem path).
        (asm_struct_chase, Technique::Pre),
    ];
    for (workload, technique) in cells {
        let run_with = |reference: bool| {
            let mut config = SimConfig::haswell_like();
            config.core.reference_scheduler = reference;
            run_one(
                &RunSpec::new(workload, technique)
                    .with_budget(40_000)
                    .with_config(config),
            )
            .expect("cell runs")
        };
        let e = run_with(false);
        let r = run_with(true);
        assert_eq!(
            e.stats, r.stats,
            "{workload}/{technique:?} diverged on a long run"
        );
    }
}

/// Runahead-mode fast-forward: a long-horizon `asm-chase-large` run under
/// every runahead technique produces bit-identical stats with the reference
/// scheduler, and the per-mode cycle split proves where fast-forward
/// engaged. PRE intervals go quiescent once the decode filter blocks on an
/// SST hit (and, with the EMQ, once the queue fills), so their runahead
/// fast-forward counters must be non-zero. Traditional runahead on a
/// pointer chase executes an INV load every single runahead cycle and the
/// buffer variant replays its chain every cycle, so both are legitimately
/// never quiescent — their runahead cycles must all be simulated.
#[test]
fn runahead_fastforward_equivalence() {
    use pre_sim::runner::{run_one, RunSpec};
    use pre_workloads::Workload;
    let chase_large = *Workload::ASM_SUITE
        .iter()
        .find(|w| w.name() == "asm-chase-large")
        .expect("chase-large kernel present");
    let cells = [
        (Technique::Runahead, false),
        (Technique::RunaheadBuffer, false),
        (Technique::Pre, true),
        (Technique::PreEmq, true),
    ];
    for (technique, expect_runahead_ff) in cells {
        let run_with = |reference: bool| {
            let mut config = SimConfig::haswell_like();
            config.core.reference_scheduler = reference;
            run_one(
                &RunSpec::new(chase_large, technique)
                    .with_budget(20_000)
                    .with_config(config),
            )
            .expect("cell runs")
        };
        let e = run_with(false);
        let r = run_with(true);
        assert_eq!(
            e.stats, r.stats,
            "asm-chase-large/{technique:?} diverged with runahead fast-forward"
        );
        // The reference scheduler never fast-forwards; the equality above
        // deliberately ignores `ff_cycles`, so pin the split down explicitly.
        assert_eq!(r.stats.ff_cycles.normal, 0, "reference never fast-forwards");
        assert_eq!(
            r.stats.ff_cycles.runahead, 0,
            "reference never fast-forwards"
        );
        let s = &e.stats;
        assert_eq!(
            s.normal_cycles_simulated()
                + s.ff_cycles.normal
                + s.runahead_cycles_simulated()
                + s.ff_cycles.runahead,
            s.cycles,
            "asm-chase-large/{technique:?}: per-mode cycle split must cover the run"
        );
        if expect_runahead_ff {
            assert!(
                s.ff_cycles.runahead > 0,
                "asm-chase-large/{technique:?}: PRE intervals must reach a quiescent state"
            );
        } else {
            assert_eq!(
                s.ff_cycles.runahead, 0,
                "asm-chase-large/{technique:?}: every runahead cycle does work, none may be skipped"
            );
        }
    }
}
