//! Synthetic SPEC-CPU2006-like workloads for the PRE simulator.
//!
//! The paper evaluates PRE on the memory-intensive subset of SPEC CPU2006
//! (the same set used by the runahead-buffer work), simulating 1-billion
//! instruction SimPoints. SPEC binaries and traces cannot be redistributed,
//! so this crate substitutes each benchmark with a synthetic kernel that
//! reproduces the property runahead execution is sensitive to: the *stalling
//! slice structure* — how many distinct dependence chains lead to
//! LLC-missing loads, how long those chains are, and whether their address
//! generation is strided, indexed or pointer-chasing — together with the
//! approximate memory intensity (LLC misses per kilo-instruction).
//!
//! See `DESIGN.md` §3 for the substitution rationale and the per-workload
//! descriptions in [`Workload::description`].
//!
//! Alongside the synthetic generators, the suite carries the **assembled
//! RISC-V kernels** from `pre-asm` ([`Workload::ASM_SUITE`], names prefixed
//! `asm-`): real programs with real control flow and address streams,
//! first-class members of [`Workload`].
//!
//! # Example
//!
//! ```
//! use pre_workloads::{Workload, WorkloadParams};
//!
//! let program = Workload::LibquantumLike.build(&WorkloadParams::default());
//! assert!(program.validate().is_ok());
//! assert!(program.len() > 4);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod builder;
mod kernels;
pub mod suite;

pub use builder::KernelBuilder;
pub use suite::{SliceProfile, Workload, WorkloadParams};
