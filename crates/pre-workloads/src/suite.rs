//! The SPEC-CPU2006-like workload suite, plus the assembled RISC-V kernels.

use crate::kernels::{
    compute_bound, gather, pointer_chase, streaming, GatherSpec, PointerChaseSpec, StreamingSpec,
};
use pre_asm::AsmKernel;
use pre_model::program::Program;
use std::fmt;
use std::str::FromStr;

/// Build-time parameters shared by all workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkloadParams {
    /// Loop trip count. The default is large enough that simulations bounded
    /// by a micro-op budget never reach the end of the program; tests that
    /// want a halting program pass a small value.
    pub iterations: u64,
    /// Seed for the randomized memory layouts (linked-list permutations).
    pub seed: u64,
}

impl Default for WorkloadParams {
    fn default() -> Self {
        WorkloadParams {
            iterations: 1_000_000_000,
            seed: 42,
        }
    }
}

impl WorkloadParams {
    /// Parameters for a short, halting run (used in tests).
    pub fn short(iterations: u64) -> Self {
        WorkloadParams {
            iterations,
            seed: 42,
        }
    }
}

/// How many distinct stalling slices dominate a workload's LLC misses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SliceProfile {
    /// A single dominant slice (the case where the runahead buffer shines,
    /// e.g. libquantum).
    Single,
    /// A handful of independent slices.
    Few,
    /// Many concurrent slices (pointer-heavy or many-array codes).
    Many,
    /// Not memory-bound.
    ComputeBound,
}

/// The synthetic stand-ins for the paper's memory-intensive SPEC CPU2006
/// benchmarks, plus a compute-bound control.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Workload {
    /// Pointer chasing over several independent linked structures with
    /// interleaved array scans (mcf).
    McfLike,
    /// Wide multi-array floating-point streaming with a store stream (lbm).
    LbmLike,
    /// Indexed gathers into a large lattice with FP compute (milc).
    MilcLike,
    /// A single, extremely regular integer stream — one dominant slice
    /// (libquantum).
    LibquantumLike,
    /// Pointer chasing with data-dependent branches and heap stores
    /// (omnetpp).
    OmnetppLike,
    /// Sparse two-level indirection with integer compute (soplex).
    SoplexLike,
    /// Gather-dominated signal processing with FP compute (sphinx3).
    Sphinx3Like,
    /// Many-stream FP stencil (bwaves).
    BwavesLike,
    /// Streaming FP stencil with higher compute density (leslie3d).
    Leslie3dLike,
    /// Large-stride streaming with poor locality (GemsFDTD).
    GemsLike,
    /// Moderate-intensity FP streaming (zeusmp).
    ZeusmpLike,
    /// Very wide multi-array FP streaming (cactusADM).
    CactusLike,
    /// Pointer-heavy integer code with a smaller working set and branchy
    /// control flow (gcc).
    GccLike,
    /// Compute-bound control kernel (not part of the paper's suite).
    ComputeBound,
    /// A real RISC-V assembly kernel from the bundled [`AsmKernel`] suite,
    /// assembled by `pre-asm` (real control flow and address streams rather
    /// than generated ones).
    Asm(AsmKernel),
}

impl Workload {
    /// The memory-intensive suite used for Figures 2 and 3.
    pub const MEMORY_INTENSIVE: [Workload; 13] = [
        Workload::McfLike,
        Workload::LbmLike,
        Workload::MilcLike,
        Workload::LibquantumLike,
        Workload::OmnetppLike,
        Workload::SoplexLike,
        Workload::Sphinx3Like,
        Workload::BwavesLike,
        Workload::Leslie3dLike,
        Workload::GemsLike,
        Workload::ZeusmpLike,
        Workload::CactusLike,
        Workload::GccLike,
    ];

    /// Every synthetic workload, including the compute-bound control.
    pub const SYNTHETIC: [Workload; 14] = [
        Workload::McfLike,
        Workload::LbmLike,
        Workload::MilcLike,
        Workload::LibquantumLike,
        Workload::OmnetppLike,
        Workload::SoplexLike,
        Workload::Sphinx3Like,
        Workload::BwavesLike,
        Workload::Leslie3dLike,
        Workload::GemsLike,
        Workload::ZeusmpLike,
        Workload::CactusLike,
        Workload::GccLike,
        Workload::ComputeBound,
    ];

    /// The assembled RISC-V kernel suite (real programs, `--suite asm`).
    pub const ASM_SUITE: [Workload; 9] = [
        Workload::Asm(AsmKernel::Matmul),
        Workload::Asm(AsmKernel::Quicksort),
        Workload::Asm(AsmKernel::PointerChase),
        Workload::Asm(AsmKernel::BoxBlur),
        Workload::Asm(AsmKernel::PrimeSieve),
        Workload::Asm(AsmKernel::BinarySearch),
        Workload::Asm(AsmKernel::ChaseLarge),
        Workload::Asm(AsmKernel::ByteHisto),
        Workload::Asm(AsmKernel::StructChase),
    ];

    /// Every workload: the synthetic suite followed by the asm suite.
    pub const ALL: [Workload; 23] = [
        Workload::McfLike,
        Workload::LbmLike,
        Workload::MilcLike,
        Workload::LibquantumLike,
        Workload::OmnetppLike,
        Workload::SoplexLike,
        Workload::Sphinx3Like,
        Workload::BwavesLike,
        Workload::Leslie3dLike,
        Workload::GemsLike,
        Workload::ZeusmpLike,
        Workload::CactusLike,
        Workload::GccLike,
        Workload::ComputeBound,
        Workload::Asm(AsmKernel::Matmul),
        Workload::Asm(AsmKernel::Quicksort),
        Workload::Asm(AsmKernel::PointerChase),
        Workload::Asm(AsmKernel::BoxBlur),
        Workload::Asm(AsmKernel::PrimeSieve),
        Workload::Asm(AsmKernel::BinarySearch),
        Workload::Asm(AsmKernel::ChaseLarge),
        Workload::Asm(AsmKernel::ByteHisto),
        Workload::Asm(AsmKernel::StructChase),
    ];

    /// Short name used in figures and on the command line.
    pub fn name(&self) -> &'static str {
        match self {
            Workload::McfLike => "mcf-like",
            Workload::LbmLike => "lbm-like",
            Workload::MilcLike => "milc-like",
            Workload::LibquantumLike => "libquantum-like",
            Workload::OmnetppLike => "omnetpp-like",
            Workload::SoplexLike => "soplex-like",
            Workload::Sphinx3Like => "sphinx3-like",
            Workload::BwavesLike => "bwaves-like",
            Workload::Leslie3dLike => "leslie3d-like",
            Workload::GemsLike => "gems-like",
            Workload::ZeusmpLike => "zeusmp-like",
            Workload::CactusLike => "cactus-like",
            Workload::GccLike => "gcc-like",
            Workload::ComputeBound => "compute-bound",
            Workload::Asm(k) => match k {
                AsmKernel::Matmul => "asm-matmul",
                AsmKernel::Quicksort => "asm-quicksort",
                AsmKernel::PointerChase => "asm-pointer-chase",
                AsmKernel::BoxBlur => "asm-box-blur",
                AsmKernel::PrimeSieve => "asm-prime-sieve",
                AsmKernel::BinarySearch => "asm-binary-search",
                AsmKernel::ChaseLarge => "asm-chase-large",
                AsmKernel::ByteHisto => "asm-byte-histo",
                AsmKernel::StructChase => "asm-struct-chase",
            },
        }
    }

    /// One-line description of the modelled behaviour.
    pub fn description(&self) -> &'static str {
        match self {
            Workload::McfLike => "three independent pointer chases plus an array scan",
            Workload::LbmLike => "three-array FP streaming stencil with an output stream",
            Workload::MilcLike => "two indexed gathers per iteration into a 16 MB lattice",
            Workload::LibquantumLike => "single strided integer stream updated in place",
            Workload::OmnetppLike => "two pointer chases with data-dependent branches",
            Workload::SoplexLike => "sparse two-level indirection with integer compute",
            Workload::Sphinx3Like => "single gather stream with heavier FP compute",
            Workload::BwavesLike => "four-array FP streaming with moderate stride",
            Workload::Leslie3dLike => "three-array FP streaming, high compute density",
            Workload::GemsLike => "two-array full-line-stride streaming, poor locality",
            Workload::ZeusmpLike => "two-array FP streaming at half-line stride",
            Workload::CactusLike => "five-array FP streaming stencil",
            Workload::GccLike => "pointer-heavy integer code, smaller working set, branchy",
            Workload::ComputeBound => "cache-resident integer/FP arithmetic (control)",
            Workload::Asm(k) => k.description(),
        }
    }

    /// The dominant stalling-slice structure.
    pub fn slice_profile(&self) -> SliceProfile {
        match self {
            Workload::LibquantumLike => SliceProfile::Single,
            Workload::GemsLike | Workload::ZeusmpLike | Workload::Sphinx3Like => SliceProfile::Few,
            Workload::ComputeBound => SliceProfile::ComputeBound,
            Workload::Asm(k) => match k {
                // One serial dependence chain / one dominant load slice.
                AsmKernel::PointerChase
                | AsmKernel::BinarySearch
                | AsmKernel::ChaseLarge
                | AsmKernel::StructChase => SliceProfile::Single,
                // A handful of strided streams.
                AsmKernel::BoxBlur
                | AsmKernel::PrimeSieve
                | AsmKernel::Quicksort
                | AsmKernel::ByteHisto => SliceProfile::Few,
                // Small matrices stay cache-resident.
                AsmKernel::Matmul => SliceProfile::ComputeBound,
            },
            _ => SliceProfile::Many,
        }
    }

    /// `true` for the assembled RISC-V kernels, `false` for the synthetic
    /// generators.
    pub fn is_asm(&self) -> bool {
        matches!(self, Workload::Asm(_))
    }

    /// Stable content hash of the program this workload builds under
    /// `params` (see [`Program::content_hash`]). Cache and snapshot keys use
    /// this rather than the workload *name*, so editing a generator or
    /// kernel source automatically invalidates every cached result derived
    /// from it.
    pub fn content_hash(&self, params: &WorkloadParams) -> u64 {
        self.build(params).content_hash()
    }

    /// Builds the workload's program.
    pub fn build(&self, params: &WorkloadParams) -> Program {
        let iters = params.iterations;
        match self {
            Workload::LibquantumLike => streaming(
                &StreamingSpec {
                    name: "libquantum-like",
                    arrays: 1,
                    stride: 8,
                    working_set: 1 << 25,
                    fp_compute: 0,
                    int_compute: 0,
                    store: true,
                    fp_loads: false,
                },
                iters,
            ),
            Workload::LbmLike => streaming(
                &StreamingSpec {
                    name: "lbm-like",
                    arrays: 3,
                    stride: 16,
                    working_set: 1 << 23,
                    fp_compute: 5,
                    int_compute: 0,
                    store: true,
                    fp_loads: true,
                },
                iters,
            ),
            Workload::BwavesLike => streaming(
                &StreamingSpec {
                    name: "bwaves-like",
                    arrays: 4,
                    stride: 16,
                    working_set: 1 << 23,
                    fp_compute: 6,
                    int_compute: 0,
                    store: true,
                    fp_loads: true,
                },
                iters,
            ),
            Workload::Leslie3dLike => streaming(
                &StreamingSpec {
                    name: "leslie3d-like",
                    arrays: 3,
                    stride: 16,
                    working_set: 1 << 23,
                    fp_compute: 9,
                    int_compute: 1,
                    store: true,
                    fp_loads: true,
                },
                iters,
            ),
            Workload::GemsLike => streaming(
                &StreamingSpec {
                    name: "gems-like",
                    arrays: 2,
                    stride: 16,
                    working_set: 1 << 24,
                    fp_compute: 6,
                    int_compute: 0,
                    store: true,
                    fp_loads: true,
                },
                iters,
            ),
            Workload::ZeusmpLike => streaming(
                &StreamingSpec {
                    name: "zeusmp-like",
                    arrays: 2,
                    stride: 16,
                    working_set: 1 << 23,
                    fp_compute: 7,
                    int_compute: 1,
                    store: true,
                    fp_loads: true,
                },
                iters,
            ),
            Workload::CactusLike => streaming(
                &StreamingSpec {
                    name: "cactus-like",
                    arrays: 5,
                    stride: 16,
                    working_set: 1 << 23,
                    fp_compute: 10,
                    int_compute: 0,
                    store: true,
                    fp_loads: true,
                },
                iters,
            ),
            Workload::MilcLike => gather(
                &GatherSpec {
                    name: "milc-like",
                    gathers: 2,
                    data_working_set: 1 << 24,
                    index_working_set: 1 << 22,
                    fp_compute: 8,
                    int_compute: 1,
                    store: true,
                },
                iters,
            ),
            Workload::Sphinx3Like => gather(
                &GatherSpec {
                    name: "sphinx3-like",
                    gathers: 1,
                    data_working_set: 1 << 23,
                    index_working_set: 1 << 22,
                    fp_compute: 7,
                    int_compute: 1,
                    store: true,
                },
                iters,
            ),
            Workload::SoplexLike => gather(
                &GatherSpec {
                    name: "soplex-like",
                    gathers: 2,
                    data_working_set: 1 << 24,
                    index_working_set: 1 << 23,
                    fp_compute: 6,
                    int_compute: 2,
                    store: true,
                },
                iters,
            ),
            Workload::McfLike => pointer_chase(
                &PointerChaseSpec {
                    name: "mcf-like",
                    lists: 3,
                    nodes_per_list: 1 << 16,
                    strided_arrays: 2,
                    int_compute: 1,
                    guarded_adds: 2,
                    guarded_store: true,
                    store: true,
                },
                iters,
                params.seed,
            ),
            Workload::OmnetppLike => pointer_chase(
                &PointerChaseSpec {
                    name: "omnetpp-like",
                    lists: 2,
                    nodes_per_list: 1 << 16,
                    strided_arrays: 1,
                    int_compute: 1,
                    guarded_adds: 2,
                    guarded_store: true,
                    store: true,
                },
                iters,
                params.seed,
            ),
            Workload::GccLike => pointer_chase(
                &PointerChaseSpec {
                    name: "gcc-like",
                    lists: 2,
                    nodes_per_list: 1 << 14,
                    strided_arrays: 0,
                    int_compute: 2,
                    guarded_adds: 3,
                    guarded_store: true,
                    store: true,
                },
                iters,
                params.seed,
            ),
            Workload::ComputeBound => compute_bound(iters),
            // Assembly kernels take the outer iteration count in `a0`; the
            // seed is irrelevant (their layouts are written in the source).
            Workload::Asm(k) => k.build(iters),
        }
    }
}

impl fmt::Display for Workload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned when parsing an unknown workload name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseWorkloadError(String);

impl fmt::Display for ParseWorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown workload `{}`", self.0)
    }
}

impl std::error::Error for ParseWorkloadError {}

impl FromStr for Workload {
    type Err = ParseWorkloadError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let wanted = s.to_ascii_lowercase();
        Workload::ALL
            .iter()
            .copied()
            .find(|w| {
                w.name() == wanted
                    || w.name().trim_end_matches("-like") == wanted
                    || w.name().strip_prefix("asm-") == Some(wanted.as_str())
            })
            .ok_or_else(|| ParseWorkloadError(s.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pre_model::program::Interpreter;

    #[test]
    fn every_workload_builds_a_valid_program() {
        let params = WorkloadParams::short(100);
        for w in Workload::ALL {
            let p = w.build(&params);
            assert!(p.validate().is_ok(), "{w} failed validation");
            assert!(!p.name.is_empty());
        }
    }

    #[test]
    fn every_workload_halts_with_small_iteration_counts() {
        let params = WorkloadParams::short(20);
        for w in Workload::ALL {
            let p = w.build(&params);
            let mut interp = Interpreter::new(&p);
            interp.run(2_000_000);
            assert!(interp.halted(), "{w} did not halt");
        }
    }

    #[test]
    fn memory_intensive_workloads_issue_loads() {
        let params = WorkloadParams::short(50);
        for w in Workload::MEMORY_INTENSIVE {
            let p = w.build(&params);
            let mut interp = Interpreter::new(&p);
            interp.run(2_000_000);
            assert!(interp.loads() > 20, "{w} issued too few loads");
        }
    }

    #[test]
    fn names_are_unique_and_parseable() {
        let mut names: Vec<_> = Workload::ALL.iter().map(|w| w.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Workload::ALL.len());
        for w in Workload::ALL {
            assert_eq!(w.name().parse::<Workload>().unwrap(), w);
        }
        assert_eq!("mcf".parse::<Workload>().unwrap(), Workload::McfLike);
        assert!("unknown".parse::<Workload>().is_err());
    }

    #[test]
    fn slice_profiles_cover_the_interesting_cases() {
        assert_eq!(
            Workload::LibquantumLike.slice_profile(),
            SliceProfile::Single
        );
        assert_eq!(Workload::McfLike.slice_profile(), SliceProfile::Many);
        assert_eq!(
            Workload::ComputeBound.slice_profile(),
            SliceProfile::ComputeBound
        );
    }

    #[test]
    fn default_params_are_effectively_non_halting() {
        assert!(WorkloadParams::default().iterations >= 1_000_000_000);
    }
}
