//! Indexed-gather kernels (milc / soplex / sphinx3-like behaviour).
//!
//! Each iteration streams an index word from a large index array and uses it
//! to address a much larger data array. The data-load stalling slice
//! therefore contains the index load and the address arithmetic, so the SST
//! has to learn a multi-instruction, multi-load slice — and the index value
//! is usually available (its line was fetched a few iterations earlier),
//! which lets runahead prefetch the data loads far ahead.

use super::{layout, regs};
use crate::builder::KernelBuilder;
use pre_model::isa::{AluOp, BranchCond};
use pre_model::program::Program;

/// Parameters of a gather kernel.
#[derive(Debug, Clone, Copy)]
pub struct GatherSpec {
    /// Workload name.
    pub name: &'static str,
    /// Number of independent gathers per iteration.
    pub gathers: usize,
    /// Data-array working set in bytes (power of two).
    pub data_working_set: u64,
    /// Index-array working set in bytes (power of two).
    pub index_working_set: u64,
    /// Floating-point compute per iteration.
    pub fp_compute: usize,
    /// Integer compute per iteration.
    pub int_compute: usize,
    /// Whether each iteration stores a result element.
    pub store: bool,
}

/// Builds a gather kernel.
pub fn gather(spec: &GatherSpec, iterations: u64) -> Program {
    assert!(
        spec.gathers >= 1 && spec.gathers <= 4,
        "1..=4 gathers supported"
    );
    assert!(spec.data_working_set.is_power_of_two());
    assert!(spec.index_working_set.is_power_of_two());
    let mut b = KernelBuilder::new(spec.name);
    let t = regs::counter();
    let n = regs::limit();
    let i = regs::index();
    let mask = regs::mask();
    let acc = regs::acc();
    let out = regs::out_base();
    // The data-array wrap mask lives in a dedicated register so the gather
    // slice is `load index; and; add; load data`.
    let data_mask = regs::tmp(1);

    b.li(t, 0);
    b.li(n, iterations as i64);
    b.li(i, 0);
    b.li(mask, (spec.index_working_set - 1) as i64);
    b.li(data_mask, (spec.data_working_set - 1) as i64 & !7);
    b.li(acc, 0);
    b.li(out, layout::SCRATCH_BASE as i64);
    for k in 0..spec.gathers {
        // Index stream base for gather k.
        b.li(
            regs::stream_base(k),
            (layout::GATHER_INDEX_BASE + k as u64 * layout::REGION_SPACING) as i64,
        );
        // Data region base for gather k.
        b.li(
            regs::stream_base(k + spec.gathers),
            (layout::GATHER_DATA_BASE + k as u64 * layout::REGION_SPACING) as i64,
        );
    }

    let loop_top = b.pc();
    for k in 0..spec.gathers {
        let idx_base = regs::stream_base(k);
        let data_base = regs::stream_base(k + spec.gathers);
        let addr = regs::stream_addr(k);
        let idx_val = regs::stream_addr(k + 4);
        // Stream the index array (the index values come from the
        // deterministic uninitialized-memory hash, i.e. pseudo-random).
        b.alu(AluOp::Add, addr, idx_base, i);
        b.load(idx_val, addr, 0);
        // Form the data address: data_base + (index & data_mask).
        b.alu(AluOp::And, idx_val, idx_val, data_mask);
        b.alu(AluOp::Add, idx_val, idx_val, data_base);
        b.fp_load(regs::fval(k), idx_val, 0);
    }
    for c in 0..spec.fp_compute {
        let src = regs::fval(c % spec.gathers);
        if c % 3 == 2 {
            b.fp_mul(regs::facc(c % 4), regs::facc(c % 4), src);
        } else {
            b.fp_alu(AluOp::Add, regs::facc(c % 4), regs::facc(c % 4), src);
        }
    }
    for c in 0..spec.int_compute {
        let op = if c % 2 == 0 { AluOp::Add } else { AluOp::Xor };
        b.alui(op, acc, acc, 0x61C8 + c as i64);
    }
    if spec.store {
        // Result stream written alongside the index stream (same induction).
        b.alu(AluOp::Add, regs::tmp(0), out, i);
        b.fp_store(regs::facc(0), regs::tmp(0), 0);
    }
    b.alui(AluOp::Add, i, i, 8);
    b.alu(AluOp::And, i, i, mask);
    b.alui(AluOp::Add, t, t, 1);
    b.branch(BranchCond::Lt, t, n, loop_top);
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pre_model::program::Interpreter;

    fn spec() -> GatherSpec {
        GatherSpec {
            name: "gather-test",
            gathers: 2,
            data_working_set: 1 << 24,
            index_working_set: 1 << 22,
            fp_compute: 4,
            int_compute: 1,
            store: true,
        }
    }

    #[test]
    fn builds_and_validates() {
        let p = gather(&spec(), 100);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn runs_and_halts() {
        let p = gather(&spec(), 64);
        let mut interp = Interpreter::new(&p);
        interp.run(1_000_000);
        assert!(interp.halted());
        // 2 gathers x 2 loads per iteration.
        assert_eq!(interp.loads(), 64 * 4);
    }

    #[test]
    fn data_addresses_stay_in_region() {
        let p = gather(&spec(), 32);
        let mut interp = Interpreter::new(&p);
        interp.run(1_000_000);
        // After the run, the data-address registers must lie inside the data
        // regions (base .. base + working set).
        for k in 0..2u64 {
            let reg = regs::stream_addr(k as usize + 4);
            let v = interp.reg(reg);
            let base = layout::GATHER_DATA_BASE + k * layout::REGION_SPACING;
            assert!(
                v >= base && v < base + (1 << 24),
                "gather {k} address {v:#x} out of range"
            );
        }
    }

    #[test]
    fn gather_count_controls_load_count() {
        let single = GatherSpec {
            gathers: 1,
            ..spec()
        };
        let p = gather(&single, 16);
        let mut interp = Interpreter::new(&p);
        interp.run(100_000);
        assert_eq!(interp.loads(), 16 * 2);
    }
}
