//! Parameterized kernel generators.
//!
//! Three families of memory behaviour cover the SPEC-like suite:
//!
//! * [`streaming`] — strided loops over one or more large arrays
//!   (lbm/bwaves/leslie3d/GemsFDTD/zeusmp/cactusADM/libquantum-like). The
//!   stalling slices are short induction chains (`i += stride; addr = base +
//!   i; load`) that do **not** depend on missed data, so runahead prefetches
//!   them very effectively.
//! * [`pointer_chase`] — one or more independent linked-list traversals
//!   (mcf/omnetpp/gcc-like). Each chain's next address depends on the
//!   previous node's data, so runahead gains come from overlapping the
//!   independent chains and from any strided side traffic, not from running
//!   a single chain further ahead.
//! * [`gather`] — two-level indirection (milc/soplex/sphinx3-like): a
//!   streamed index load feeds a data load into a large array. The data-load
//!   slice includes the index load, exercising multi-instruction slice
//!   learning in the SST.

pub mod gather;
pub mod misc;
pub mod pointer;
pub mod streaming;

pub use gather::{gather, GatherSpec};
pub use misc::compute_bound;
pub use pointer::{pointer_chase, PointerChaseSpec};
pub use streaming::{streaming, StreamingSpec};

use pre_model::reg::ArchReg;

/// Register-allocation conventions shared by the generators.
pub(crate) mod regs {
    use super::ArchReg;

    /// Loop trip counter.
    pub fn counter() -> ArchReg {
        ArchReg::int(1)
    }
    /// Total iteration bound.
    pub fn limit() -> ArchReg {
        ArchReg::int(2)
    }
    /// Primary stream index.
    pub fn index() -> ArchReg {
        ArchReg::int(3)
    }
    /// Wrap mask for the primary index.
    pub fn mask() -> ArchReg {
        ArchReg::int(4)
    }
    /// Integer accumulator.
    pub fn acc() -> ArchReg {
        ArchReg::int(5)
    }
    /// Scratch/output base address.
    pub fn out_base() -> ArchReg {
        ArchReg::int(6)
    }
    /// Register holding the constant 1 (for data-dependent branches).
    pub fn const_one() -> ArchReg {
        ArchReg::int(7)
    }
    /// Base address register for stream `k` (k < 8).
    pub fn stream_base(k: usize) -> ArchReg {
        ArchReg::int(8 + k as u8)
    }
    /// Address temporary for stream `k` (k < 8).
    pub fn stream_addr(k: usize) -> ArchReg {
        ArchReg::int(16 + k as u8)
    }
    /// Pointer register for chase `k` (k < 6).
    pub fn chase_ptr(k: usize) -> ArchReg {
        ArchReg::int(24 + k as u8)
    }
    /// General integer temporary `k` (k < 2).
    pub fn tmp(k: usize) -> ArchReg {
        ArchReg::int(30 + k as u8)
    }
    /// Floating-point value register for stream `k`.
    pub fn fval(k: usize) -> ArchReg {
        ArchReg::fp(1 + k as u8)
    }
    /// Floating-point accumulator `k` (k < 4).
    pub fn facc(k: usize) -> ArchReg {
        ArchReg::fp(20 + k as u8)
    }
}

/// Virtual-address map used by all kernels so regions never overlap.
pub(crate) mod layout {
    /// Base of the first streamed array; each subsequent region is
    /// `REGION_SPACING` higher.
    pub const STREAM_BASE: u64 = 0x1000_0000;
    /// Base of the first linked-list region.
    pub const LIST_BASE: u64 = 0x8000_0000;
    /// Base of the gather data region.
    pub const GATHER_DATA_BASE: u64 = 0xC000_0000;
    /// Base of the streamed index array for gather kernels.
    pub const GATHER_INDEX_BASE: u64 = 0xE000_0000;
    /// Small scratch/output region (hot in the cache).
    pub const SCRATCH_BASE: u64 = 0x0100_0000;
    /// Spacing between regions (larger than any working set used).
    pub const REGION_SPACING: u64 = 0x0400_0000;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_conventions_do_not_collide() {
        let mut all = vec![
            regs::counter(),
            regs::limit(),
            regs::index(),
            regs::mask(),
            regs::acc(),
            regs::out_base(),
            regs::const_one(),
        ];
        for k in 0..8 {
            all.push(regs::stream_base(k));
            all.push(regs::stream_addr(k));
        }
        for k in 0..6 {
            all.push(regs::chase_ptr(k));
        }
        for k in 0..2 {
            all.push(regs::tmp(k));
        }
        let mut dedup = all.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), all.len(), "register conventions overlap");
    }

    // Compile-time check that the memory regions are disjoint.
    const _: () = {
        assert!(layout::STREAM_BASE + 8 * layout::REGION_SPACING < layout::LIST_BASE);
        assert!(layout::LIST_BASE + 8 * layout::REGION_SPACING < layout::GATHER_DATA_BASE);
        assert!(layout::GATHER_DATA_BASE + layout::REGION_SPACING < layout::GATHER_INDEX_BASE);
    };
}
