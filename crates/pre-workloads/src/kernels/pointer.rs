//! Pointer-chasing kernels (mcf / omnetpp / gcc-like behaviour).

use super::{layout, regs};
use crate::builder::KernelBuilder;
use pre_model::isa::{AluOp, BranchCond};
use pre_model::program::Program;
use pre_model::rng::SmallRng;

/// Parameters of a pointer-chasing kernel.
#[derive(Debug, Clone, Copy)]
pub struct PointerChaseSpec {
    /// Workload name.
    pub name: &'static str,
    /// Number of independent linked lists traversed concurrently. Each list
    /// is a distinct stalling slice, which is where PRE's multi-slice
    /// coverage pays off over the single-chain runahead buffer.
    pub lists: usize,
    /// Nodes per list; each node occupies one cache line. The traversal
    /// order is a random cycle, so successive nodes live on different pages.
    pub nodes_per_list: usize,
    /// Additional strided array traffic per iteration (0 disables it). This
    /// models the array scans real pointer-heavy codes interleave with the
    /// chases and gives runahead independent work to prefetch.
    pub strided_arrays: usize,
    /// Integer compute per iteration.
    pub int_compute: usize,
    /// Number of data-dependent branches per iteration, each guarding one
    /// extra integer operation (models the compare-heavy control flow of
    /// mcf/omnetpp/gcc and keeps the window's destination-register density
    /// realistic).
    pub guarded_adds: usize,
    /// Whether one additional data-dependent branch guards a scratch store.
    pub guarded_store: bool,
    /// Whether each iteration unconditionally stores to the scratch region.
    pub store: bool,
}

/// Builds a pointer-chasing kernel and its linked-list memory image.
pub fn pointer_chase(spec: &PointerChaseSpec, iterations: u64, seed: u64) -> Program {
    assert!(spec.lists >= 1 && spec.lists <= 6, "1..=6 lists supported");
    assert!(spec.nodes_per_list >= 2, "lists need at least two nodes");
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x5EED_CAFE);
    let mut b = KernelBuilder::new(spec.name);
    let t = regs::counter();
    let n = regs::limit();
    let i = regs::index();
    let mask = regs::mask();
    let acc = regs::acc();
    let out = regs::out_base();
    let one = regs::const_one();

    b.li(t, 0);
    b.li(n, iterations as i64);
    b.li(i, 0);
    b.li(acc, 0);
    b.li(out, layout::SCRATCH_BASE as i64);
    b.li(one, 1);
    // Strided side traffic uses an 8 MB window.
    let stream_ws: u64 = 1 << 23;
    b.li(mask, (stream_ws - 1) as i64);
    for k in 0..spec.strided_arrays {
        b.li(
            regs::stream_base(k),
            (layout::STREAM_BASE + k as u64 * layout::REGION_SPACING) as i64,
        );
    }

    // Build each list as a random cycle over its region and point the chase
    // register at the first node.
    for list in 0..spec.lists {
        let base = layout::LIST_BASE + list as u64 * layout::REGION_SPACING;
        let nodes = spec.nodes_per_list;
        let mut order: Vec<u64> = (0..nodes as u64).collect();
        // Shuffle into a single random cycle.
        rng.shuffle(&mut order);
        for w in 0..nodes {
            let cur = base + order[w] * 64;
            let next = base + order[(w + 1) % nodes] * 64;
            b.init_mem(cur, next);
        }
        let start = base + order[0] * 64;
        b.li(regs::chase_ptr(list), start as i64);
    }

    let loop_top = b.pc();
    // One dependent load per list: `p = mem[p]`.
    for list in 0..spec.lists {
        b.load(regs::chase_ptr(list), regs::chase_ptr(list), 0);
    }
    // Independent strided traffic (the scanned value feeds nothing critical,
    // like a prefetching pass over an arc array).
    for k in 0..spec.strided_arrays {
        b.alu(AluOp::Add, regs::stream_addr(k), regs::stream_base(k), i);
        b.load(regs::tmp(0), regs::stream_addr(k), 0);
    }
    // Integer compute on the accumulator (node bookkeeping that does not
    // depend on the outstanding misses, so it drains from the issue queue
    // quickly — what keeps the paper's "37 % of issue-queue entries free at
    // runahead entry" realistic).
    for c in 0..spec.int_compute {
        let op = if c % 2 == 0 { AluOp::Add } else { AluOp::Xor };
        b.alui(op, acc, acc, 0x2545 + c as i64);
    }
    // Data-dependent branches guarding one extra update each. The first one
    // compares a chased pointer (essentially random, resolves only when the
    // chase load returns — the mispredict-prone case); the remaining ones
    // compare the quickly-available accumulator so they do not pile up in the
    // issue queue behind the misses.
    for g in 0..spec.guarded_adds {
        let skip = b.pc() + 2;
        if g == 0 {
            b.branch(BranchCond::Lt, regs::chase_ptr(0), acc, skip);
        } else {
            b.branch(BranchCond::Lt, acc, mask, skip);
        }
        b.alui(AluOp::Add, acc, acc, 13 + g as i64);
    }
    // Optionally a branch-guarded store (e.g. "update the best arc found").
    if spec.guarded_store {
        let skip = b.pc() + 2;
        b.branch(BranchCond::Ge, acc, mask, skip);
        b.store(acc, out, 64);
    }
    // Unconditional scratch store (hits in the cache; keeps the store queue
    // exercised).
    if spec.store {
        b.store(acc, out, 0);
    }
    // Induction for the strided component.
    if spec.strided_arrays > 0 {
        b.alui(AluOp::Add, i, i, 64);
        b.alu(AluOp::And, i, i, mask);
    }
    b.alui(AluOp::Add, t, t, 1);
    b.branch(BranchCond::Lt, t, n, loop_top);
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pre_model::program::Interpreter;
    use std::collections::HashSet;

    fn spec() -> PointerChaseSpec {
        PointerChaseSpec {
            name: "chase-test",
            lists: 3,
            nodes_per_list: 256,
            strided_arrays: 1,
            int_compute: 1,
            guarded_adds: 2,
            guarded_store: true,
            store: true,
        }
    }

    #[test]
    fn builds_and_validates() {
        let p = pointer_chase(&spec(), 1_000, 1);
        assert!(p.validate().is_ok());
        assert_eq!(p.initial_mem.len(), 3 * 256);
    }

    #[test]
    fn lists_form_a_single_cycle() {
        let p = pointer_chase(&spec(), 10, 42);
        // For each list region, following the stored pointers must visit all
        // nodes before returning to the start.
        let per_list = 256;
        for list in 0..3u64 {
            let base = layout::LIST_BASE + list * layout::REGION_SPACING;
            let map: std::collections::HashMap<u64, u64> = p
                .initial_mem
                .iter()
                .copied()
                .filter(|(a, _)| *a >= base && *a < base + layout::REGION_SPACING)
                .collect();
            assert_eq!(map.len(), per_list);
            let start = *map.keys().min().unwrap();
            let mut seen = HashSet::new();
            let mut cur = start;
            while seen.insert(cur) {
                cur = map[&cur];
            }
            assert_eq!(seen.len(), per_list, "list {list} is not a single cycle");
        }
    }

    #[test]
    fn chase_is_deterministic_for_a_seed() {
        let a = pointer_chase(&spec(), 10, 7);
        let b = pointer_chase(&spec(), 10, 7);
        assert_eq!(a.initial_mem, b.initial_mem);
        let c = pointer_chase(&spec(), 10, 8);
        assert_ne!(a.initial_mem, c.initial_mem);
    }

    #[test]
    fn runs_functionally_and_halts() {
        let p = pointer_chase(&spec(), 100, 3);
        let mut interp = Interpreter::new(&p);
        interp.run(1_000_000);
        assert!(interp.halted());
        // Pointer registers must stay inside their list regions.
        for list in 0..3 {
            let v = interp.reg(regs::chase_ptr(list));
            let base = layout::LIST_BASE + list as u64 * layout::REGION_SPACING;
            assert!(v >= base && v < base + layout::REGION_SPACING);
        }
    }

    #[test]
    fn guarded_branches_execute_conditionally() {
        let p = pointer_chase(&spec(), 200, 3);
        let mut interp = Interpreter::new(&p);
        interp.run(1_000_000);
        let (branches, taken) = interp.branch_profile();
        // Loop branch + 2 guarded adds + guarded store = 4 per iteration.
        assert_eq!(branches, 200 * 4);
        assert!(taken > 200, "some guards must be taken");
        assert!(taken < 200 * 4, "not every guard can be taken");
    }

    #[test]
    fn destination_density_leaves_rob_as_binding_resource() {
        // The fraction of loop-body micro-ops that write an integer register
        // must stay below 136/192 ≈ 0.71, otherwise the physical register
        // file (and not the ROB) limits the window and PRE has no registers
        // to run ahead with (see DESIGN.md).
        let p = pointer_chase(&spec(), 10, 1);
        let body: Vec<_> = p.insts.iter().skip_while(|i| !i.opcode.is_load()).collect();
        let with_dest = body.iter().filter(|i| i.dest.is_some()).count();
        let density = with_dest as f64 / body.len() as f64;
        assert!(
            density < 0.71,
            "integer destination density too high: {density:.2}"
        );
    }
}
