//! Strided streaming kernels (lbm / bwaves / leslie3d / GemsFDTD / zeusmp /
//! cactusADM / libquantum-like behaviour).

use super::{layout, regs};
use crate::builder::KernelBuilder;
use pre_model::isa::{AluOp, BranchCond};
use pre_model::program::Program;

/// Parameters of a streaming kernel.
#[derive(Debug, Clone, Copy)]
pub struct StreamingSpec {
    /// Workload name.
    pub name: &'static str,
    /// Number of input arrays streamed in parallel (each is an independent
    /// stalling slice).
    pub arrays: usize,
    /// Bytes the index advances per iteration (64 ⇒ every iteration touches a
    /// new cache line per array; 8 ⇒ one miss every eight iterations).
    pub stride: u64,
    /// Working-set size per array in bytes (power of two, ≫ LLC so steady
    /// state always misses).
    pub working_set: u64,
    /// Floating-point operations per iteration (models the compute density).
    pub fp_compute: usize,
    /// Integer operations per iteration.
    pub int_compute: usize,
    /// Whether each iteration writes one element of an output stream.
    pub store: bool,
    /// Use floating-point loads (`true` for the FP benchmarks, `false` for
    /// libquantum-like integer streaming). The integer variant models
    /// libquantum's conditional bit toggle: the loaded value is tested and
    /// the accumulator update is branch-guarded, which also keeps the
    /// window's destination-register density realistic.
    pub fp_loads: bool,
}

/// Builds a streaming kernel.
///
/// The loop body is, per array *k*:
/// `addr_k = base_k + i; x_k = load addr_k`, followed by the configured
/// amount of compute, an optional store of the result, and the induction
/// update `i = (i + stride) & mask; t = t + 1; if t < N goto loop`.
pub fn streaming(spec: &StreamingSpec, iterations: u64) -> Program {
    assert!(
        spec.arrays >= 1 && spec.arrays <= 6,
        "1..=6 streamed arrays supported"
    );
    assert!(
        spec.working_set.is_power_of_two(),
        "working set must be a power of two"
    );
    let mut b = KernelBuilder::new(spec.name);
    let t = regs::counter();
    let n = regs::limit();
    let i = regs::index();
    let mask = regs::mask();
    let acc = regs::acc();
    let out = regs::out_base();

    b.li(t, 0);
    b.li(n, iterations as i64);
    b.li(i, 0);
    b.li(mask, (spec.working_set - 1) as i64);
    b.li(acc, 0);
    b.li(regs::const_one(), 1);
    b.li(
        out,
        (layout::STREAM_BASE + 7 * layout::REGION_SPACING) as i64,
    );
    for k in 0..spec.arrays {
        b.li(
            regs::stream_base(k),
            (layout::STREAM_BASE + k as u64 * layout::REGION_SPACING) as i64,
        );
    }
    b.emit(pre_model::isa::StaticInst::fp_alu(
        AluOp::Xor,
        regs::facc(0),
        regs::facc(0),
        regs::facc(0),
    ));

    let loop_top = b.pc();
    // Address generation + loads: one independent slice per array.
    for k in 0..spec.arrays {
        b.alu(AluOp::Add, regs::stream_addr(k), regs::stream_base(k), i);
        if spec.fp_loads {
            b.fp_load(regs::fval(k), regs::stream_addr(k), 0);
        } else {
            // libquantum-style conditional toggle: test a bit of the loaded
            // value and update the accumulator only when it is set.
            b.load(regs::tmp(0), regs::stream_addr(k), 0);
            b.alui(AluOp::And, regs::tmp(1), regs::tmp(0), 1);
            let skip = b.pc() + 2;
            b.branch(BranchCond::Ne, regs::tmp(1), regs::const_one(), skip);
            b.alu(AluOp::Xor, acc, acc, regs::tmp(0));
        }
    }
    // Compute.
    for c in 0..spec.fp_compute {
        let src = regs::fval(c % spec.arrays.max(1));
        if c % 3 == 2 {
            b.fp_mul(regs::facc(c % 4), regs::facc(c % 4), src);
        } else {
            b.fp_alu(AluOp::Add, regs::facc(c % 4), regs::facc(c % 4), src);
        }
    }
    for c in 0..spec.int_compute {
        let op = if c % 2 == 0 { AluOp::Add } else { AluOp::Xor };
        b.alui(op, acc, acc, 0x9E37 + c as i64);
    }
    // Output stream.
    if spec.store {
        if spec.fp_loads {
            b.alu(AluOp::Add, regs::tmp(1), out, i);
            b.fp_store(regs::facc(0), regs::tmp(1), 0);
        } else {
            // The integer variant writes the output stream relative to the
            // first input stream's address (fixed region offset), avoiding an
            // extra address-generation micro-op.
            // Region 7 (the scratch region) relative to stream region 0.
            let offset = 7 * layout::REGION_SPACING as i64;
            b.store(acc, regs::stream_addr(0), offset);
        }
    }
    // Induction.
    b.alui(AluOp::Add, i, i, spec.stride as i64);
    b.alu(AluOp::And, i, i, mask);
    b.alui(AluOp::Add, t, t, 1);
    b.branch(BranchCond::Lt, t, n, loop_top);
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pre_model::program::Interpreter;

    fn spec() -> StreamingSpec {
        StreamingSpec {
            name: "stream-test",
            arrays: 3,
            stride: 64,
            working_set: 1 << 23,
            fp_compute: 4,
            int_compute: 1,
            store: true,
            fp_loads: true,
        }
    }

    #[test]
    fn builds_and_validates() {
        let p = streaming(&spec(), 1000);
        assert!(p.validate().is_ok());
        assert!(p.len() > 10);
    }

    #[test]
    fn runs_functionally_and_halts() {
        let p = streaming(&spec(), 50);
        let mut interp = Interpreter::new(&p);
        let executed = interp.run(1_000_000);
        assert!(interp.halted(), "kernel with 50 iterations must halt");
        assert!(executed > 50 * 10);
        assert_eq!(interp.loads(), 150);
    }

    #[test]
    fn index_wraps_within_working_set() {
        let mut s = spec();
        s.working_set = 1 << 12; // 4 KB
        let p = streaming(&s, 200);
        let mut interp = Interpreter::new(&p);
        interp.run(1_000_000);
        // Index register must stay below the working set.
        assert!(interp.reg(regs::index()) < (1 << 12));
    }

    #[test]
    fn integer_variant_has_no_fp_loads() {
        let s = StreamingSpec {
            fp_loads: false,
            arrays: 1,
            ..spec()
        };
        let p = streaming(&s, 10);
        assert!(p
            .insts
            .iter()
            .all(|i| i.opcode != pre_model::isa::Opcode::FpLoad));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two_working_set() {
        let s = StreamingSpec {
            working_set: 3000,
            ..spec()
        };
        let _ = streaming(&s, 10);
    }
}
