//! Compute-bound control kernel.
//!
//! Not part of the paper's memory-intensive suite; used by tests and
//! ablations as a control: runahead execution should neither help nor hurt a
//! kernel that never stalls on memory.

use super::regs;
use crate::builder::KernelBuilder;
use pre_model::isa::{AluOp, BranchCond};
use pre_model::program::Program;

/// Builds a compute-bound kernel: a loop of dependent and independent integer
/// and floating-point arithmetic over a tiny, cache-resident working set.
pub fn compute_bound(iterations: u64) -> Program {
    let mut b = KernelBuilder::new("compute-bound");
    let t = regs::counter();
    let n = regs::limit();
    let acc = regs::acc();

    b.li(t, 0);
    b.li(n, iterations as i64);
    b.li(acc, 1);
    for k in 0..4 {
        b.li(regs::stream_addr(k), 3 + k as i64);
    }
    let loop_top = b.pc();
    for k in 0..4 {
        b.alu(AluOp::Add, regs::stream_addr(k), regs::stream_addr(k), acc);
        b.fp_alu(
            AluOp::Add,
            regs::facc(k),
            regs::facc(k),
            regs::facc((k + 1) % 4),
        );
    }
    b.mul(acc, acc, regs::stream_addr(0));
    b.alui(AluOp::Xor, acc, acc, 0x55);
    b.fp_mul(regs::facc(0), regs::facc(0), regs::facc(1));
    b.alui(AluOp::Add, t, t, 1);
    b.branch(BranchCond::Lt, t, n, loop_top);
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pre_model::program::Interpreter;

    #[test]
    fn builds_runs_and_halts() {
        let p = compute_bound(100);
        assert!(p.validate().is_ok());
        let mut interp = Interpreter::new(&p);
        interp.run(1_000_000);
        assert!(interp.halted());
        assert_eq!(interp.loads(), 0, "compute-bound kernel must not load");
    }

    #[test]
    fn iteration_count_scales_work() {
        let p10 = compute_bound(10);
        let p100 = compute_bound(100);
        let mut a = Interpreter::new(&p10);
        let mut b = Interpreter::new(&p100);
        a.run(1_000_000);
        b.run(1_000_000);
        assert!(b.retired() > a.retired() * 5);
    }
}
