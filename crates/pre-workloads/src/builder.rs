//! A small builder for hand-written synthetic kernels.

use pre_model::isa::{AluOp, BranchCond, StaticInst};
use pre_model::program::Program;
use pre_model::reg::ArchReg;

/// Convenience builder around [`Program`]: appends instructions, tracks the
/// current PC for loop targets, and records initial register/memory state.
#[derive(Debug, Clone)]
pub struct KernelBuilder {
    program: Program,
}

impl KernelBuilder {
    /// Starts a kernel with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        KernelBuilder {
            program: Program::new(name),
        }
    }

    /// The PC the next emitted instruction will have (use as a loop target).
    pub fn pc(&self) -> u32 {
        self.program.insts.len() as u32
    }

    /// Emits an arbitrary instruction.
    pub fn emit(&mut self, inst: StaticInst) -> &mut Self {
        self.program.insts.push(inst);
        self
    }

    /// `dest = imm`.
    pub fn li(&mut self, dest: ArchReg, imm: i64) -> &mut Self {
        self.emit(StaticInst::load_imm(dest, imm))
    }

    /// `dest = src1 op src2`.
    pub fn alu(&mut self, op: AluOp, dest: ArchReg, src1: ArchReg, src2: ArchReg) -> &mut Self {
        self.emit(StaticInst::int_alu(op, dest, src1, src2))
    }

    /// `dest = src1 op imm`.
    pub fn alui(&mut self, op: AluOp, dest: ArchReg, src1: ArchReg, imm: i64) -> &mut Self {
        self.emit(StaticInst::int_alu_imm(op, dest, src1, imm))
    }

    /// `dest = src1 * src2`.
    pub fn mul(&mut self, dest: ArchReg, src1: ArchReg, src2: ArchReg) -> &mut Self {
        self.emit(StaticInst::int_mul(dest, src1, src2))
    }

    /// Integer load `dest = mem[base + offset]`.
    pub fn load(&mut self, dest: ArchReg, base: ArchReg, offset: i64) -> &mut Self {
        self.emit(StaticInst::load(dest, base, offset))
    }

    /// Floating-point load.
    pub fn fp_load(&mut self, dest: ArchReg, base: ArchReg, offset: i64) -> &mut Self {
        self.emit(StaticInst::fp_load(dest, base, offset))
    }

    /// Integer store `mem[base + offset] = value`.
    pub fn store(&mut self, value: ArchReg, base: ArchReg, offset: i64) -> &mut Self {
        self.emit(StaticInst::store(value, base, offset))
    }

    /// Floating-point store.
    pub fn fp_store(&mut self, value: ArchReg, base: ArchReg, offset: i64) -> &mut Self {
        self.emit(StaticInst::fp_store(value, base, offset))
    }

    /// Floating-point `dest = src1 op src2`.
    pub fn fp_alu(&mut self, op: AluOp, dest: ArchReg, src1: ArchReg, src2: ArchReg) -> &mut Self {
        self.emit(StaticInst::fp_alu(op, dest, src1, src2))
    }

    /// Floating-point multiply.
    pub fn fp_mul(&mut self, dest: ArchReg, src1: ArchReg, src2: ArchReg) -> &mut Self {
        self.emit(StaticInst::fp_mul(dest, src1, src2))
    }

    /// Conditional branch.
    pub fn branch(&mut self, cond: BranchCond, a: ArchReg, b: ArchReg, target: u32) -> &mut Self {
        self.emit(StaticInst::branch(cond, a, b, target))
    }

    /// Unconditional jump.
    pub fn jump(&mut self, target: u32) -> &mut Self {
        self.emit(StaticInst::jump(target))
    }

    /// Sets an initial architectural register value.
    pub fn init_reg(&mut self, reg: ArchReg, value: u64) -> &mut Self {
        self.program.initial_regs.push((reg, value));
        self
    }

    /// Sets an initial memory word.
    pub fn init_mem(&mut self, addr: u64, value: u64) -> &mut Self {
        self.program.initial_mem.push((addr, value));
        self
    }

    /// Finishes the kernel.
    ///
    /// # Panics
    ///
    /// Panics if the assembled program fails validation — kernels are
    /// compiled into the crate, so a validation failure is a programming
    /// error, not user input.
    pub fn finish(self) -> Program {
        self.program
            .validate()
            .expect("generated kernel must be well-formed");
        self.program
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pre_model::program::Interpreter;

    #[test]
    fn builder_produces_valid_programs() {
        let mut b = KernelBuilder::new("test");
        let r1 = ArchReg::int(1);
        let r2 = ArchReg::int(2);
        b.li(r1, 5);
        b.li(r2, 7);
        b.alu(AluOp::Add, r1, r1, r2);
        let p = b.finish();
        assert_eq!(p.len(), 3);
        let mut interp = Interpreter::new(&p);
        while interp.step() {}
        assert_eq!(interp.reg(r1), 12);
    }

    #[test]
    fn pc_tracks_emitted_instructions() {
        let mut b = KernelBuilder::new("pc");
        assert_eq!(b.pc(), 0);
        b.li(ArchReg::int(1), 1);
        assert_eq!(b.pc(), 1);
        let loop_top = b.pc();
        b.alui(AluOp::Add, ArchReg::int(1), ArchReg::int(1), 1);
        b.branch(BranchCond::Lt, ArchReg::int(1), ArchReg::int(1), loop_top);
        assert_eq!(b.pc(), 3);
    }

    #[test]
    fn init_state_is_recorded() {
        let mut b = KernelBuilder::new("init");
        b.init_reg(ArchReg::int(3), 42);
        b.init_mem(0x1000, 7);
        b.li(ArchReg::int(1), 0);
        let p = b.finish();
        assert_eq!(p.initial_regs, vec![(ArchReg::int(3), 42)]);
        assert_eq!(p.initial_mem, vec![(0x1000, 7)]);
    }

    #[test]
    #[should_panic(expected = "well-formed")]
    fn invalid_kernel_panics_at_finish() {
        let mut b = KernelBuilder::new("bad");
        b.jump(99);
        let _ = b.finish();
    }
}
