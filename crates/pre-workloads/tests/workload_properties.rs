//! Randomized-property tests of the workload generators: every workload must
//! produce a well-formed, deterministic, functionally executable program for
//! arbitrary (reasonable) build parameters.
//!
//! The cases are driven by the workspace's deterministic
//! [`pre_model::rng::SmallRng`] instead of proptest (the build environment
//! has no crates.io access); each case derives from a fixed seed, so failures
//! reproduce exactly.

use pre_model::program::Interpreter;
use pre_model::rng::SmallRng;
use pre_workloads::{Workload, WorkloadParams};

/// Programs validate, are deterministic for a seed, and halt after the
/// requested number of iterations.
#[test]
fn workloads_are_wellformed_and_deterministic() {
    let mut rng = SmallRng::seed_from_u64(0x5EED_0001);
    for _case in 0..24 {
        let workload = Workload::ALL[rng.gen_range_usize(0..Workload::ALL.len())];
        let iterations = rng.gen_range_u64(1..60);
        let seed = rng.gen_range_u64(0..1000);
        let params = WorkloadParams { iterations, seed };
        let a = workload.build(&params);
        let b = workload.build(&params);
        assert!(a.validate().is_ok());
        assert_eq!(a.insts.len(), b.insts.len());
        assert_eq!(a.initial_mem, b.initial_mem);
        assert_eq!(a.initial_regs, b.initial_regs);

        let mut interp = Interpreter::new(&a);
        interp.run(4_000_000);
        assert!(
            interp.halted(),
            "{workload} with {iterations} iterations did not halt"
        );
        assert!(
            interp.retired() >= iterations,
            "loop body must execute once per iteration"
        );
    }
}

/// The memory-intensive suite really is memory intensive: dynamic load
/// density stays above one load per 25 micro-ops for every member.
#[test]
fn memory_intensive_suite_has_load_density() {
    let mut rng = SmallRng::seed_from_u64(0x5EED_0002);
    for _case in 0..16 {
        let suite = Workload::MEMORY_INTENSIVE;
        let workload = suite[rng.gen_range_usize(0..suite.len())];
        let iterations = rng.gen_range_u64(20..60);
        let params = WorkloadParams {
            iterations,
            seed: 7,
        };
        let program = workload.build(&params);
        let mut interp = Interpreter::new(&program);
        interp.run(4_000_000);
        let density = interp.loads() as f64 / interp.retired() as f64;
        assert!(
            density > 0.04,
            "{workload} load density {density:.3} too low"
        );
        assert!(
            density < 0.6,
            "{workload} load density {density:.3} implausibly high"
        );
    }
}

/// `Display` and `FromStr` round-trip for every workload in both suites,
/// and the suite predicates partition `ALL`.
#[test]
fn names_roundtrip_across_both_suites() {
    for workload in Workload::ALL {
        let name = workload.to_string();
        assert_eq!(name.parse::<Workload>().unwrap(), workload, "{name}");
    }
    assert!(Workload::SYNTHETIC.iter().all(|w| !w.is_asm()));
    assert!(Workload::ASM_SUITE.iter().all(|w| w.is_asm()));
    assert_eq!(
        Workload::ALL.len(),
        Workload::SYNTHETIC.len() + Workload::ASM_SUITE.len()
    );
    // Asm kernels also parse without their `asm-` prefix.
    assert_eq!(
        "quicksort".parse::<Workload>().unwrap().name(),
        "asm-quicksort"
    );
}

/// Assembling the same source twice yields identical `Program`s, and the
/// seed (which randomizes synthetic layouts) does not perturb asm builds.
#[test]
fn asm_builds_are_deterministic_and_seed_independent() {
    let mut rng = SmallRng::seed_from_u64(0x5EED_0004);
    for workload in Workload::ASM_SUITE {
        let iterations = rng.gen_range_u64(1..40);
        let seed_a = rng.gen_range_u64(0..1000);
        let seed_b = rng.gen_range_u64(0..1000);
        let a = workload.build(&WorkloadParams {
            iterations,
            seed: seed_a,
        });
        let b = workload.build(&WorkloadParams {
            iterations,
            seed: seed_b,
        });
        assert_eq!(a, b, "{workload} build depends on the seed");
        let c = workload.build(&WorkloadParams {
            iterations,
            seed: seed_a,
        });
        assert_eq!(a, c, "{workload} build is not deterministic");
    }
}

/// Different seeds produce different linked-list layouts for the
/// pointer-chasing workloads (the randomization actually randomizes).
#[test]
fn pointer_layouts_depend_on_the_seed() {
    let mut rng = SmallRng::seed_from_u64(0x5EED_0003);
    for _case in 0..16 {
        let seed_a = rng.gen_range_u64(0..500);
        let seed_b = rng.gen_range_u64(501..1000);
        let a = Workload::McfLike.build(&WorkloadParams {
            iterations: 5,
            seed: seed_a,
        });
        let b = Workload::McfLike.build(&WorkloadParams {
            iterations: 5,
            seed: seed_b,
        });
        assert_ne!(a.initial_mem, b.initial_mem);
    }
}
