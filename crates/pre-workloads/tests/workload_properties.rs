//! Property-based tests of the workload generators: every workload must
//! produce a well-formed, deterministic, functionally executable program for
//! arbitrary (reasonable) build parameters.

use pre_model::program::Interpreter;
use pre_workloads::{Workload, WorkloadParams};
use proptest::prelude::*;

fn any_workload() -> impl Strategy<Value = Workload> {
    proptest::sample::select(Workload::ALL.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Programs validate, are deterministic for a seed, and halt after the
    /// requested number of iterations.
    #[test]
    fn workloads_are_wellformed_and_deterministic(
        workload in any_workload(),
        iterations in 1u64..60,
        seed in 0u64..1000,
    ) {
        let params = WorkloadParams { iterations, seed };
        let a = workload.build(&params);
        let b = workload.build(&params);
        prop_assert!(a.validate().is_ok());
        prop_assert_eq!(a.insts.len(), b.insts.len());
        prop_assert_eq!(&a.initial_mem, &b.initial_mem);
        prop_assert_eq!(&a.initial_regs, &b.initial_regs);

        let mut interp = Interpreter::new(&a);
        interp.run(4_000_000);
        prop_assert!(interp.halted(), "{} with {} iterations did not halt", workload, iterations);
        prop_assert!(interp.retired() >= iterations, "loop body must execute once per iteration");
    }

    /// The memory-intensive suite really is memory intensive: dynamic load
    /// density stays above one load per 25 micro-ops for every member.
    #[test]
    fn memory_intensive_suite_has_load_density(
        workload in proptest::sample::select(Workload::MEMORY_INTENSIVE.to_vec()),
        iterations in 20u64..60,
    ) {
        let params = WorkloadParams { iterations, seed: 7 };
        let program = workload.build(&params);
        let mut interp = Interpreter::new(&program);
        interp.run(4_000_000);
        let density = interp.loads() as f64 / interp.retired() as f64;
        prop_assert!(density > 0.04, "{} load density {:.3} too low", workload, density);
        prop_assert!(density < 0.6, "{} load density {:.3} implausibly high", workload, density);
    }

    /// Different seeds produce different linked-list layouts for the
    /// pointer-chasing workloads (the randomization actually randomizes).
    #[test]
    fn pointer_layouts_depend_on_the_seed(seed_a in 0u64..500, seed_b in 501u64..1000) {
        let a = Workload::McfLike.build(&WorkloadParams { iterations: 5, seed: seed_a });
        let b = Workload::McfLike.build(&WorkloadParams { iterations: 5, seed: seed_b });
        prop_assert_ne!(&a.initial_mem, &b.initial_mem);
    }
}
