//! Architectural and physical register identifiers.
//!
//! The synthetic ISA exposes 32 integer and 32 floating-point architectural
//! registers (64 total, matching the 64-entry Register Alias Table the paper
//! extends in Section 3.2). The out-of-order back-end renames them onto a
//! physical register file whose size is configured per register class
//! (168 + 168 for the Haswell-like baseline of Table 1).

use std::fmt;

/// Number of integer architectural registers.
pub const NUM_INT_ARCH_REGS: usize = 32;
/// Number of floating-point architectural registers.
pub const NUM_FP_ARCH_REGS: usize = 32;
/// Total number of architectural registers (the RAT has one entry per register).
pub const NUM_ARCH_REGS: usize = NUM_INT_ARCH_REGS + NUM_FP_ARCH_REGS;

/// Register class: integer or floating point.
///
/// The two classes have independent physical register files and free lists,
/// as in the paper's baseline (168 integer + 168 floating-point registers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RegClass {
    /// 64-bit integer register.
    Int,
    /// 128-bit floating-point / SIMD register.
    Fp,
}

impl RegClass {
    /// Both register classes, in a fixed order.
    pub const ALL: [RegClass; 2] = [RegClass::Int, RegClass::Fp];
}

impl fmt::Display for RegClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegClass::Int => write!(f, "int"),
            RegClass::Fp => write!(f, "fp"),
        }
    }
}

/// An architectural register: a class and an index within that class.
///
/// # Example
///
/// ```
/// use pre_model::reg::{ArchReg, RegClass};
///
/// let r3 = ArchReg::int(3);
/// assert_eq!(r3.class(), RegClass::Int);
/// assert_eq!(r3.flat_index(), 3);
/// let f0 = ArchReg::fp(0);
/// assert_eq!(f0.flat_index(), 32);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ArchReg {
    class: RegClass,
    index: u8,
}

impl ArchReg {
    /// Creates an integer architectural register.
    ///
    /// # Panics
    ///
    /// Panics if `index >= NUM_INT_ARCH_REGS`.
    pub fn int(index: u8) -> Self {
        assert!(
            (index as usize) < NUM_INT_ARCH_REGS,
            "integer architectural register index {index} out of range"
        );
        ArchReg {
            class: RegClass::Int,
            index,
        }
    }

    /// Creates a floating-point architectural register.
    ///
    /// # Panics
    ///
    /// Panics if `index >= NUM_FP_ARCH_REGS`.
    pub fn fp(index: u8) -> Self {
        assert!(
            (index as usize) < NUM_FP_ARCH_REGS,
            "floating-point architectural register index {index} out of range"
        );
        ArchReg {
            class: RegClass::Fp,
            index,
        }
    }

    /// The register class of this register.
    pub fn class(&self) -> RegClass {
        self.class
    }

    /// The index of this register within its class.
    pub fn index(&self) -> u8 {
        self.index
    }

    /// A flat index in `0..NUM_ARCH_REGS`, suitable for indexing the RAT.
    ///
    /// Integer registers occupy `0..32`, floating-point registers `32..64`.
    pub fn flat_index(&self) -> usize {
        match self.class {
            RegClass::Int => self.index as usize,
            RegClass::Fp => NUM_INT_ARCH_REGS + self.index as usize,
        }
    }

    /// Reconstructs an architectural register from a flat RAT index.
    ///
    /// # Panics
    ///
    /// Panics if `flat >= NUM_ARCH_REGS`.
    pub fn from_flat_index(flat: usize) -> Self {
        assert!(
            flat < NUM_ARCH_REGS,
            "flat register index {flat} out of range"
        );
        if flat < NUM_INT_ARCH_REGS {
            ArchReg::int(flat as u8)
        } else {
            ArchReg::fp((flat - NUM_INT_ARCH_REGS) as u8)
        }
    }

    /// Iterates over every architectural register (integer first, then fp).
    pub fn all() -> impl Iterator<Item = ArchReg> {
        (0..NUM_ARCH_REGS).map(ArchReg::from_flat_index)
    }
}

impl fmt::Display for ArchReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.class {
            RegClass::Int => write!(f, "r{}", self.index),
            RegClass::Fp => write!(f, "f{}", self.index),
        }
    }
}

/// A physical register tag.
///
/// Physical registers are plain indices into a per-class physical register
/// file; the class is implied by context (the renamer never mixes classes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PhysReg(pub u16);

impl PhysReg {
    /// The raw index of this physical register.
    pub fn index(&self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PhysReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_index_roundtrip() {
        for flat in 0..NUM_ARCH_REGS {
            let r = ArchReg::from_flat_index(flat);
            assert_eq!(r.flat_index(), flat);
        }
    }

    #[test]
    fn int_and_fp_do_not_alias() {
        assert_ne!(ArchReg::int(5), ArchReg::fp(5));
        assert_ne!(ArchReg::int(5).flat_index(), ArchReg::fp(5).flat_index());
    }

    #[test]
    fn display_names() {
        assert_eq!(ArchReg::int(7).to_string(), "r7");
        assert_eq!(ArchReg::fp(2).to_string(), "f2");
        assert_eq!(PhysReg(11).to_string(), "p11");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn int_index_out_of_range_panics() {
        let _ = ArchReg::int(32);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn flat_index_out_of_range_panics() {
        let _ = ArchReg::from_flat_index(NUM_ARCH_REGS);
    }

    #[test]
    fn all_enumerates_every_register_once() {
        let regs: Vec<_> = ArchReg::all().collect();
        assert_eq!(regs.len(), NUM_ARCH_REGS);
        let ints = regs.iter().filter(|r| r.class() == RegClass::Int).count();
        assert_eq!(ints, NUM_INT_ARCH_REGS);
    }
}
