//! Functional (value-level) memory image.
//!
//! The simulator is execution-driven: loads and stores operate on real
//! values so that dependence chains — in particular the *stalling slices*
//! that runahead execution pre-executes — compute real addresses. [`FuncMem`]
//! is the sparse **byte-addressable** memory backing that execution: every
//! access names a byte address and a length of 1–8 bytes, so sub-word
//! `lb`/`lh`/`lw` accesses (and the byte-indexed data structures they
//! traverse) are modelled faithfully instead of aliasing onto 8-byte words.
//!
//! Reads of bytes that were never written return a deterministic
//! pseudo-random value derived from the address, so wrong-path and runahead
//! execution stay deterministic without pre-initializing all of memory. The
//! hash is assigned **per byte** (byte `a` reads byte `a % 8` of the hash of
//! its containing aligned word), so an aligned 8-byte read of fully
//! unwritten memory reassembles exactly the word hash the historical
//! word-granular model returned — existing workloads observe bit-identical
//! values.
//!
//! Page payloads live in an arena indexed by a `page → index` map, with a
//! one-entry last-page cache in front of the map: sequential and strided
//! access streams (the common case for the bundled kernels) resolve
//! repeated touches of the same 4 KB page without hashing. Freshly
//! allocated pages are pre-seeded with their per-byte hash-init values, so
//! the load path never consults a written-byte bitmap — the bitmap exists
//! only to account [`FuncMem::written_bytes`].

use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, Ordering};

/// Bytes per functional-memory page.
const PAGE_BYTES: u64 = 4096;
/// Words in the per-page written-byte bitmap (4096 bits).
const BITMAP_WORDS: usize = (PAGE_BYTES / 64) as usize;

/// Sentinel arena index for "last-page cache empty".
const NO_PAGE: u32 = u32::MAX;

/// Deterministic "uninitialized memory" value: a cheap integer hash of the
/// 8-byte-aligned address (SplitMix64 finalizer).
fn hash_addr(addr: u64) -> u64 {
    let mut z = addr.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The hash-init value of one byte: byte `addr % 8` (little-endian) of the
/// hash of the containing aligned word.
fn hash_init_byte(addr: u64) -> u8 {
    (hash_addr(addr & !7) >> ((addr & 7) * 8)) as u8
}

/// Little-endian assembly of the hash-init values of `len` bytes at `addr`.
fn hash_init_bytes(addr: u64, len: usize) -> u64 {
    if len == 8 && addr & 7 == 0 {
        return hash_addr(addr);
    }
    let mut value = 0u64;
    for i in (0..len).rev() {
        value = (value << 8) | u64::from(hash_init_byte(addr.wrapping_add(i as u64)));
    }
    value
}

/// One resident 4 KB page: byte payload plus a written-byte bitmap (the
/// payload is pre-seeded with hash-init values, so the bitmap is only used
/// to count distinct written bytes).
#[derive(Debug, Clone)]
struct Page {
    page_no: u64,
    data: Box<[u8]>,
    written: Box<[u64]>,
}

impl Page {
    fn new(page_no: u64) -> Self {
        let base = page_no * PAGE_BYTES;
        let mut data = vec![0u8; PAGE_BYTES as usize].into_boxed_slice();
        for (w, chunk) in data.chunks_exact_mut(8).enumerate() {
            chunk.copy_from_slice(&hash_addr(base + w as u64 * 8).to_le_bytes());
        }
        Page {
            page_no,
            data,
            written: vec![0u64; BITMAP_WORDS].into_boxed_slice(),
        }
    }

    /// Marks bytes `offset .. offset + len` written; returns how many were
    /// newly written. `len` is at most 8, so the bit run spans at most two
    /// bitmap words — two mask operations, no per-byte loop.
    fn mark_written(&mut self, offset: usize, len: usize) -> u32 {
        debug_assert!((1..=8).contains(&len));
        let bits = (1u64 << len) - 1;
        let word = offset / 64;
        let shift = offset % 64;
        let lo = bits << shift;
        let newly_lo = lo & !self.written[word];
        self.written[word] |= lo;
        let mut newly = newly_lo.count_ones();
        if shift + len > 64 {
            let hi = bits >> (64 - shift);
            let newly_hi = hi & !self.written[word + 1];
            self.written[word + 1] |= hi;
            newly += newly_hi.count_ones();
        }
        newly
    }
}

/// Sparse functional memory, byte granularity.
///
/// Addresses are byte addresses; accesses read or write `len` (1–8) bytes
/// little-endian, at any alignment (accesses may span pages).
///
/// # Example
///
/// ```
/// use pre_model::mem::FuncMem;
///
/// let mut mem = FuncMem::new();
/// mem.store_u64(0x1000, 0x1122_3344_5566_7788);
/// assert_eq!(mem.load_u64(0x1000), 0x1122_3344_5566_7788);
/// // Individual bytes are addressable (little-endian).
/// assert_eq!(mem.load_bytes(0x1003, 1), 0x55);
/// // Unwritten locations read a deterministic address-derived value.
/// assert_eq!(mem.load_u64(0x2000), mem.load_u64(0x2000));
/// ```
#[derive(Debug)]
pub struct FuncMem {
    /// Page number → index into `pages`.
    page_index: HashMap<u64, u32>,
    /// Page payloads (arena; indices are stable because pages are never
    /// removed).
    pages: Vec<Page>,
    stored_bytes: u64,
    /// One-entry cache: arena index of the most recently touched page.
    /// Every hit is validated against the page's own number, so a relaxed
    /// atomic keeps loads `&self` operations while leaving the type `Sync`
    /// (snapshots holding a `FuncMem` are shared across worker threads).
    last_page: AtomicU32,
}

impl Default for FuncMem {
    fn default() -> Self {
        FuncMem::new()
    }
}

impl Clone for FuncMem {
    fn clone(&self) -> Self {
        FuncMem {
            page_index: self.page_index.clone(),
            pages: self.pages.clone(),
            stored_bytes: self.stored_bytes,
            last_page: AtomicU32::new(self.last_page.load(Ordering::Relaxed)),
        }
    }
}

/// Semantic equality: the same set of pages with the same contents and
/// written-byte bitmaps. Arena order and the last-page cache are
/// representation details and do not participate.
impl PartialEq for FuncMem {
    fn eq(&self, other: &Self) -> bool {
        self.stored_bytes == other.stored_bytes
            && self.page_index.len() == other.page_index.len()
            && self.page_index.iter().all(|(&page_no, &idx)| {
                let Some(&other_idx) = other.page_index.get(&page_no) else {
                    return false;
                };
                let a = &self.pages[idx as usize];
                let b = &other.pages[other_idx as usize];
                a.data == b.data && a.written == b.written
            })
    }
}

impl FuncMem {
    /// Creates an empty functional memory.
    pub fn new() -> Self {
        FuncMem {
            page_index: HashMap::new(),
            pages: Vec::new(),
            stored_bytes: 0,
            last_page: AtomicU32::new(NO_PAGE),
        }
    }

    fn split(addr: u64) -> (u64, usize) {
        (addr / PAGE_BYTES, (addr % PAGE_BYTES) as usize)
    }

    /// Arena index of `page`, consulting the last-page cache first.
    fn lookup_page(&self, page: u64) -> Option<u32> {
        let cached_idx = self.last_page.load(Ordering::Relaxed);
        if let Some(cached) = self.pages.get(cached_idx as usize) {
            if cached.page_no == page {
                return Some(cached_idx);
            }
        }
        let idx = *self.page_index.get(&page)?;
        self.last_page.store(idx, Ordering::Relaxed);
        Some(idx)
    }

    fn ensure_page(&mut self, page: u64) -> u32 {
        match self.lookup_page(page) {
            Some(idx) => idx,
            None => {
                let idx = u32::try_from(self.pages.len()).expect("fewer than 2^32 pages");
                self.pages.push(Page::new(page));
                self.page_index.insert(page, idx);
                self.last_page.store(idx, Ordering::Relaxed);
                idx
            }
        }
    }

    /// Reads `len` (1–8) bytes at `addr`, little-endian, zero-extended into
    /// a `u64`.
    ///
    /// Never allocates: reads of unwritten memory return a deterministic
    /// per-byte value derived from the address.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) when `len` is outside `1..=8`.
    pub fn load_bytes(&self, addr: u64, len: u64) -> u64 {
        debug_assert!((1..=8).contains(&len), "access length {len} out of range");
        let len = len as usize;
        let (page, offset) = Self::split(addr);
        if offset + len <= PAGE_BYTES as usize {
            match self.lookup_page(page) {
                Some(idx) => {
                    let bytes = &self.pages[idx as usize].data[offset..offset + len];
                    let mut buf = [0u8; 8];
                    buf[..len].copy_from_slice(bytes);
                    u64::from_le_bytes(buf)
                }
                None => hash_init_bytes(addr, len),
            }
        } else {
            // Page-crossing access: assemble byte by byte.
            let mut value = 0u64;
            for i in (0..len).rev() {
                value = (value << 8) | self.load_bytes(addr.wrapping_add(i as u64), 1);
            }
            value
        }
    }

    /// Writes the low `len` (1–8) bytes of `value` at `addr`, little-endian.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) when `len` is outside `1..=8`.
    pub fn store_bytes(&mut self, addr: u64, len: u64, value: u64) {
        debug_assert!((1..=8).contains(&len), "access length {len} out of range");
        let len = len as usize;
        let (page, offset) = Self::split(addr);
        if offset + len <= PAGE_BYTES as usize {
            let idx = self.ensure_page(page);
            let page = &mut self.pages[idx as usize];
            page.data[offset..offset + len].copy_from_slice(&value.to_le_bytes()[..len]);
            self.stored_bytes += u64::from(page.mark_written(offset, len));
        } else {
            for i in 0..len {
                self.store_bytes(addr.wrapping_add(i as u64), 1, value >> (8 * i));
            }
        }
    }

    /// Reads the 8 bytes at `addr` (convenience for [`FuncMem::load_bytes`]
    /// with `len == 8`; callers are responsible for alignment — the pipeline
    /// naturally aligns effective addresses per access width).
    pub fn load_u64(&self, addr: u64) -> u64 {
        self.load_bytes(addr, 8)
    }

    /// Writes 8 bytes at `addr` ([`FuncMem::store_bytes`] with `len == 8`).
    pub fn store_u64(&mut self, addr: u64, value: u64) {
        self.store_bytes(addr, 8, value);
    }

    /// Number of distinct bytes ever written.
    pub fn written_bytes(&self) -> u64 {
        self.stored_bytes
    }

    /// Number of resident pages.
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    /// Bulk-initializes memory from `(address, 8-byte value)` pairs.
    ///
    /// Runs of consecutive aligned pairs that cover a whole fresh page are
    /// installed wholesale — fully written, so the hash-init pass and the
    /// per-store bookkeeping are both skipped. Program data segments are
    /// exactly such runs, and multi-megabyte images (the pointer-chase
    /// tables) are rebuilt once per forked core during sampled simulation,
    /// so this path is hot. The result is bit-identical to the store loop:
    /// same payload, same written-bitmap, same written-byte count, same
    /// page-arena order (first touch).
    pub fn init_from<I: IntoIterator<Item = (u64, u64)>>(&mut self, pairs: I) {
        const WORDS_PER_PAGE: usize = (PAGE_BYTES / 8) as usize;
        let mut iter = pairs.into_iter().peekable();
        let mut run: Vec<u64> = Vec::with_capacity(WORDS_PER_PAGE);
        while let Some(&(addr, _)) = iter.peek() {
            let fresh_page_start =
                addr % PAGE_BYTES == 0 && self.lookup_page(addr / PAGE_BYTES).is_none();
            if !fresh_page_start {
                let (addr, value) = iter.next().expect("peeked");
                self.store_u64(addr, value);
                continue;
            }
            run.clear();
            while run.len() < WORDS_PER_PAGE {
                match iter.peek() {
                    Some(&(a, v)) if a == addr + 8 * run.len() as u64 => {
                        run.push(v);
                        iter.next();
                    }
                    _ => break,
                }
            }
            if run.len() == WORDS_PER_PAGE {
                self.install_fresh_full_page(addr / PAGE_BYTES, &run);
            } else {
                for (i, &value) in run.iter().enumerate() {
                    self.store_u64(addr + 8 * i as u64, value);
                }
            }
        }
    }

    /// Materializes a page that is not yet resident with every byte written:
    /// `words` carries the full payload, so the hash-init pass of
    /// [`Page::new`] would be dead work.
    fn install_fresh_full_page(&mut self, page_no: u64, words: &[u64]) {
        debug_assert_eq!(words.len() * 8, PAGE_BYTES as usize);
        debug_assert!(self.lookup_page(page_no).is_none());
        let mut data = vec![0u8; PAGE_BYTES as usize].into_boxed_slice();
        for (chunk, word) in data.chunks_exact_mut(8).zip(words) {
            chunk.copy_from_slice(&word.to_le_bytes());
        }
        let idx = u32::try_from(self.pages.len()).expect("fewer than 2^32 pages");
        self.pages.push(Page {
            page_no,
            data,
            written: vec![u64::MAX; BITMAP_WORDS].into_boxed_slice(),
        });
        self.page_index.insert(page_no, idx);
        self.last_page.store(idx, Ordering::Relaxed);
        self.stored_bytes += PAGE_BYTES;
    }

    /// Bulk-initializes memory from `(address, byte)` pairs (assembler
    /// `.byte`/`.half` images).
    pub fn init_bytes_from<I: IntoIterator<Item = (u64, u8)>>(&mut self, pairs: I) {
        for (addr, value) in pairs {
            self.store_bytes(addr, 1, u64::from(value));
        }
    }

    /// Iterates the resident pages in ascending page-number order as
    /// `(page_number, payload, written_bitmap)` triples. This is the
    /// snapshot serializer's view of the image: the payload already carries
    /// the deterministic hash-init values for unwritten bytes, so a page
    /// dump reproduces the image exactly.
    pub fn page_images(&self) -> impl Iterator<Item = (u64, &[u8], &[u64])> {
        let mut numbered: Vec<(u64, u32)> = self.page_index.iter().map(|(&p, &i)| (p, i)).collect();
        numbered.sort_unstable_by_key(|&(p, _)| p);
        numbered.into_iter().map(|(page_no, idx)| {
            let page = &self.pages[idx as usize];
            (page_no, &page.data[..], &page.written[..])
        })
    }

    /// Installs one page wholesale (payload plus written-byte bitmap),
    /// replacing any resident page with the same number. The written-byte
    /// accounting is recomputed from the bitmaps, so installing the pages of
    /// [`FuncMem::page_images`] into a fresh memory reproduces
    /// [`FuncMem::written_bytes`] exactly.
    ///
    /// # Panics
    ///
    /// Panics when `data` is not [`FuncMem::PAGE_BYTES`] long or `written`
    /// does not cover one bit per byte.
    pub fn install_page(&mut self, page_no: u64, data: &[u8], written: &[u64]) {
        assert_eq!(data.len(), PAGE_BYTES as usize, "page payload size");
        assert_eq!(written.len(), BITMAP_WORDS, "written-bitmap size");
        let idx = self.ensure_page(page_no);
        let page = &mut self.pages[idx as usize];
        let old_written: u64 = page.written.iter().map(|w| u64::from(w.count_ones())).sum();
        page.data.copy_from_slice(data);
        page.written.copy_from_slice(written);
        let new_written: u64 = written.iter().map(|w| u64::from(w.count_ones())).sum();
        self.stored_bytes = self.stored_bytes - old_written + new_written;
    }

    /// Bytes per page, the granularity of [`FuncMem::page_images`] /
    /// [`FuncMem::install_page`].
    pub const PAGE_BYTES: usize = PAGE_BYTES as usize;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_then_load_roundtrips() {
        let mut mem = FuncMem::new();
        mem.store_u64(0x1000, 7);
        mem.store_u64(0x1008, 8);
        assert_eq!(mem.load_u64(0x1000), 7);
        assert_eq!(mem.load_u64(0x1008), 8);
    }

    #[test]
    fn every_width_roundtrips_at_any_alignment() {
        let mut mem = FuncMem::new();
        for (len, addr, value) in [
            (1, 0x1003, 0xAB),
            (2, 0x1001, 0xBEEF),
            (4, 0x1005, 0xDEAD_BEEF),
            (8, 0x1013, 0x0123_4567_89AB_CDEF),
        ] {
            mem.store_bytes(addr, len, value);
            assert_eq!(mem.load_bytes(addr, len), value, "len {len} @ {addr:#x}");
        }
    }

    #[test]
    fn bytes_are_independent_and_little_endian() {
        let mut mem = FuncMem::new();
        mem.store_u64(0x2000, 0x1122_3344_5566_7788);
        assert_eq!(mem.load_bytes(0x2000, 1), 0x88);
        assert_eq!(mem.load_bytes(0x2007, 1), 0x11);
        assert_eq!(mem.load_bytes(0x2002, 2), 0x5566);
        assert_eq!(mem.load_bytes(0x2004, 4), 0x1122_3344);
        // Overwrite one interior byte; its neighbours are untouched.
        mem.store_bytes(0x2003, 1, 0xFF);
        assert_eq!(mem.load_u64(0x2000), 0x1122_3344_FF66_7788);
    }

    #[test]
    fn bulk_init_matches_the_store_loop_bit_for_bit() {
        // Pairs engineered to hit every init_from path: two full aligned
        // pages (wholesale install), a partial page (store-loop fallback), a
        // misaligned run, and a revisit of an already-resident page (the
        // fresh-page check must reject it).
        let mut pairs: Vec<(u64, u64)> = Vec::new();
        for w in 0..2 * (PAGE_BYTES / 8) {
            pairs.push((w * 8, w.wrapping_mul(0x9E37_79B9)));
        }
        for w in 0..17 {
            pairs.push((0x5000 + w * 8, w ^ 0xABCD));
        }
        pairs.push((0x9004, 0x1111_2222_3333_4444)); // misaligned
        pairs.push((0x0008, 0xFFFF)); // page 0 again, now resident

        let mut fast = FuncMem::new();
        fast.init_from(pairs.iter().copied());
        let mut slow = FuncMem::new();
        for &(addr, value) in &pairs {
            slow.store_u64(addr, value);
        }

        assert_eq!(fast.written_bytes(), slow.written_bytes());
        assert_eq!(fast.resident_pages(), slow.resident_pages());
        let fast_pages: Vec<_> = fast
            .page_images()
            .map(|(n, d, w)| (n, d.to_vec(), w.to_vec()))
            .collect();
        let slow_pages: Vec<_> = slow
            .page_images()
            .map(|(n, d, w)| (n, d.to_vec(), w.to_vec()))
            .collect();
        assert_eq!(fast_pages, slow_pages);
    }

    #[test]
    fn unwritten_reads_are_deterministic_and_do_not_allocate() {
        let mem = FuncMem::new();
        let a = mem.load_u64(0xABCD_0000);
        let b = mem.load_u64(0xABCD_0000);
        assert_eq!(a, b);
        assert_eq!(mem.resident_pages(), 0);
    }

    #[test]
    fn unwritten_bytes_reassemble_the_word_hash() {
        // The per-byte hash init must agree with the historical word-granular
        // hash: an aligned 8-byte read of unwritten memory returns
        // hash_addr(addr), byte reads return its little-endian bytes — with
        // or without a resident page.
        let addr = 0x7_3000u64;
        let expected = hash_addr(addr);
        let mem = FuncMem::new();
        assert_eq!(mem.load_u64(addr), expected);
        for i in 0..8 {
            assert_eq!(
                mem.load_bytes(addr + i, 1),
                u64::from(expected.to_le_bytes()[i as usize])
            );
        }
        let mut resident = FuncMem::new();
        resident.store_u64(addr + 512, 1); // same page, different word
        assert_eq!(resident.load_u64(addr), expected);
        assert_eq!(resident.load_bytes(addr + 3, 2), (expected >> 24) & 0xFFFF);
    }

    #[test]
    fn partial_writes_mix_with_hash_init_bytes() {
        let addr = 0x9_1000u64;
        let mut mem = FuncMem::new();
        mem.store_bytes(addr, 1, 0x5A);
        let hash = hash_addr(addr);
        let expected = (hash & !0xFF) | 0x5A;
        assert_eq!(mem.load_u64(addr), expected);
    }

    #[test]
    fn different_unwritten_addresses_read_different_values() {
        let mem = FuncMem::new();
        assert_ne!(mem.load_u64(0x1000), mem.load_u64(0x1008));
    }

    #[test]
    fn written_byte_count_tracks_unique_bytes() {
        let mut mem = FuncMem::new();
        mem.store_u64(0x1000, 1);
        mem.store_u64(0x1000, 2);
        mem.store_u64(0x2000, 3);
        assert_eq!(mem.written_bytes(), 16);
        mem.store_bytes(0x1004, 2, 9); // inside the first word: no new bytes
        assert_eq!(mem.written_bytes(), 16);
        mem.store_bytes(0x3000, 1, 9);
        assert_eq!(mem.written_bytes(), 17);
    }

    #[test]
    fn page_crossing_accesses_work() {
        let mut mem = FuncMem::new();
        let addr = PAGE_BYTES - 3; // 3 bytes in one page, 5 in the next
        mem.store_bytes(addr, 8, 0x1122_3344_5566_7788);
        assert_eq!(mem.load_bytes(addr, 8), 0x1122_3344_5566_7788);
        assert_eq!(mem.resident_pages(), 2);
        assert_eq!(mem.load_bytes(PAGE_BYTES, 1), 0x55);
    }

    #[test]
    fn former_sentinel_value_roundtrips_exactly() {
        // The word-granular model reserved 0xDEAD_BEEF_DEAD_BEEF as an
        // unwritten marker and remapped stores of it; the byte-granular
        // model stores it faithfully.
        let mut mem = FuncMem::new();
        mem.store_u64(0x40, 0xDEAD_BEEF_DEAD_BEEF);
        assert_eq!(mem.load_u64(0x40), 0xDEAD_BEEF_DEAD_BEEF);
    }

    #[test]
    fn init_from_pairs() {
        let mut mem = FuncMem::new();
        mem.init_from([(0x10, 1), (0x18, 2), (0x20, 3)]);
        assert_eq!(mem.load_u64(0x18), 2);
        assert_eq!(mem.written_bytes(), 24);
        mem.init_bytes_from([(0x30, 0xAA), (0x31, 0xBB)]);
        assert_eq!(mem.load_bytes(0x30, 2), 0xBBAA);
    }

    #[test]
    fn interleaved_page_accesses_hit_through_the_last_page_cache() {
        let mut mem = FuncMem::new();
        // Two pages, alternating touches: every switch must re-resolve the
        // page correctly.
        mem.store_u64(0x0000, 1);
        mem.store_u64(0x2000, 2);
        for _ in 0..8 {
            assert_eq!(mem.load_u64(0x0000), 1);
            assert_eq!(mem.load_u64(0x2000), 2);
        }
        // A clone keeps its own cache and the same contents.
        let clone = mem.clone();
        assert_eq!(clone.load_u64(0x0000), 1);
        assert_eq!(clone.load_u64(0x2000), 2);
        assert_eq!(clone.resident_pages(), 2);
    }
}
