//! Functional (value-level) memory image.
//!
//! The simulator is execution-driven: loads and stores operate on real
//! values so that dependence chains — in particular the *stalling slices*
//! that runahead execution pre-executes — compute real addresses. [`FuncMem`]
//! is the sparse 64-bit word-addressable memory backing that execution.
//!
//! Reads of locations that were never written return a deterministic
//! pseudo-random value derived from the address, so wrong-path and runahead
//! execution stay deterministic without pre-initializing all of memory.
//!
//! Page payloads live in an arena indexed by a `page → index` map, with a
//! one-entry last-page cache in front of the map: sequential and strided
//! access streams (the common case for the bundled kernels) resolve
//! repeated touches of the same 4 KB page without hashing.

use std::cell::Cell;
use std::collections::HashMap;

/// Bytes per functional-memory page.
const PAGE_BYTES: u64 = 4096;
/// 64-bit words per page.
const PAGE_WORDS: usize = (PAGE_BYTES / 8) as usize;

/// Sentinel arena index for "last-page cache empty".
const NO_PAGE: u32 = u32::MAX;

/// Deterministic "uninitialized memory" value: a cheap integer hash of the
/// address (SplitMix64 finalizer).
fn hash_addr(addr: u64) -> u64 {
    let mut z = addr.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Sparse functional memory, 8-byte word granularity.
///
/// Addresses are byte addresses; accesses are aligned down to 8 bytes.
///
/// # Example
///
/// ```
/// use pre_model::mem::FuncMem;
///
/// let mut mem = FuncMem::new();
/// mem.store_u64(0x1000, 42);
/// assert_eq!(mem.load_u64(0x1000), 42);
/// // Unwritten locations read a deterministic address-derived value.
/// assert_eq!(mem.load_u64(0x2000), mem.load_u64(0x2000));
/// ```
#[derive(Debug, Clone)]
pub struct FuncMem {
    /// Page number → index into `page_data`.
    page_index: HashMap<u64, u32>,
    /// Page payloads (arena; indices are stable because pages are never
    /// removed).
    page_data: Vec<Box<[u64]>>,
    stored_words: u64,
    /// One-entry cache of the most recently touched `(page, arena index)`.
    /// Interior mutability keeps `load_u64` a `&self` operation.
    last_page: Cell<(u64, u32)>,
}

impl Default for FuncMem {
    fn default() -> Self {
        FuncMem::new()
    }
}

impl FuncMem {
    /// Creates an empty functional memory.
    pub fn new() -> Self {
        FuncMem {
            page_index: HashMap::new(),
            page_data: Vec::new(),
            stored_words: 0,
            last_page: Cell::new((0, NO_PAGE)),
        }
    }

    fn split(addr: u64) -> (u64, usize) {
        let word = addr / 8;
        let page = word / PAGE_WORDS as u64;
        let offset = (word % PAGE_WORDS as u64) as usize;
        (page, offset)
    }

    /// Arena index of `page`, consulting the last-page cache first.
    fn lookup_page(&self, page: u64) -> Option<u32> {
        let (cached_page, cached_idx) = self.last_page.get();
        if cached_idx != NO_PAGE && cached_page == page {
            return Some(cached_idx);
        }
        let idx = *self.page_index.get(&page)?;
        self.last_page.set((page, idx));
        Some(idx)
    }

    /// Reads the 64-bit word containing `addr`.
    ///
    /// Never allocates: reads of unwritten memory return a deterministic
    /// value derived from the (word-aligned) address.
    pub fn load_u64(&self, addr: u64) -> u64 {
        let (page, offset) = Self::split(addr);
        match self.lookup_page(page) {
            Some(idx) => {
                let v = self.page_data[idx as usize][offset];
                if v == UNWRITTEN_MARKER {
                    hash_addr(addr & !7)
                } else {
                    v
                }
            }
            None => hash_addr(addr & !7),
        }
    }

    /// Writes the 64-bit word containing `addr`.
    pub fn store_u64(&mut self, addr: u64, value: u64) {
        let (page, offset) = Self::split(addr);
        let idx = match self.lookup_page(page) {
            Some(idx) => idx,
            None => {
                let idx = u32::try_from(self.page_data.len()).expect("fewer than 2^32 pages");
                self.page_data
                    .push(vec![UNWRITTEN_MARKER; PAGE_WORDS].into_boxed_slice());
                self.page_index.insert(page, idx);
                self.last_page.set((page, idx));
                idx
            }
        };
        let words = &mut self.page_data[idx as usize];
        if words[offset] == UNWRITTEN_MARKER {
            self.stored_words += 1;
        }
        // A stored value equal to the marker is remapped to a neighbouring
        // bit pattern; the marker is reserved to distinguish unwritten words.
        words[offset] = if value == UNWRITTEN_MARKER {
            UNWRITTEN_MARKER ^ 1
        } else {
            value
        };
    }

    /// Number of distinct 64-bit words ever written.
    pub fn written_words(&self) -> u64 {
        self.stored_words
    }

    /// Number of resident pages.
    pub fn resident_pages(&self) -> usize {
        self.page_data.len()
    }

    /// Bulk-initializes memory from `(address, value)` pairs.
    pub fn init_from<I: IntoIterator<Item = (u64, u64)>>(&mut self, pairs: I) {
        for (addr, value) in pairs {
            self.store_u64(addr, value);
        }
    }
}

/// Sentinel for "this word was never written". The probability of a program
/// legitimately storing this exact value is negligible and such stores are
/// remapped (see [`FuncMem::store_u64`]).
const UNWRITTEN_MARKER: u64 = 0xDEAD_BEEF_DEAD_BEEF;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_then_load_roundtrips() {
        let mut mem = FuncMem::new();
        mem.store_u64(0x1000, 7);
        mem.store_u64(0x1008, 8);
        assert_eq!(mem.load_u64(0x1000), 7);
        assert_eq!(mem.load_u64(0x1008), 8);
    }

    #[test]
    fn loads_align_to_words() {
        let mut mem = FuncMem::new();
        mem.store_u64(0x1000, 7);
        assert_eq!(mem.load_u64(0x1003), 7);
    }

    #[test]
    fn unwritten_reads_are_deterministic_and_do_not_allocate() {
        let mem = FuncMem::new();
        let a = mem.load_u64(0xABCD_0000);
        let b = mem.load_u64(0xABCD_0000);
        assert_eq!(a, b);
        assert_eq!(mem.resident_pages(), 0);
    }

    #[test]
    fn different_unwritten_addresses_read_different_values() {
        let mem = FuncMem::new();
        assert_ne!(mem.load_u64(0x1000), mem.load_u64(0x1008));
    }

    #[test]
    fn written_word_count_tracks_unique_words() {
        let mut mem = FuncMem::new();
        mem.store_u64(0x1000, 1);
        mem.store_u64(0x1000, 2);
        mem.store_u64(0x2000, 3);
        assert_eq!(mem.written_words(), 2);
    }

    #[test]
    fn storing_the_marker_value_still_reads_back_written() {
        let mut mem = FuncMem::new();
        mem.store_u64(0x42, UNWRITTEN_MARKER);
        // The exact value is remapped but the location must not read as the
        // address hash of an unwritten word.
        assert_ne!(mem.load_u64(0x42), hash_addr(0x40));
    }

    #[test]
    fn init_from_pairs() {
        let mut mem = FuncMem::new();
        mem.init_from([(0x10, 1), (0x18, 2), (0x20, 3)]);
        assert_eq!(mem.load_u64(0x18), 2);
        assert_eq!(mem.written_words(), 3);
    }

    #[test]
    fn interleaved_page_accesses_hit_through_the_last_page_cache() {
        let mut mem = FuncMem::new();
        // Two pages, alternating touches: every switch must re-resolve the
        // page correctly.
        mem.store_u64(0x0000, 1);
        mem.store_u64(0x2000, 2);
        for _ in 0..8 {
            assert_eq!(mem.load_u64(0x0000), 1);
            assert_eq!(mem.load_u64(0x2000), 2);
        }
        // A clone keeps its own cache and the same contents.
        let clone = mem.clone();
        assert_eq!(clone.load_u64(0x0000), 1);
        assert_eq!(clone.load_u64(0x2000), 2);
        assert_eq!(clone.resident_pages(), 2);
    }
}
