//! Warm-up snapshots: functional state plus a cache-warming trace.
//!
//! A [`SimSnapshot`] captures everything a warmed-up simulation start needs
//! and nothing tied to one particular core configuration:
//!
//! * the architectural registers and next PC after executing N micro-ops on
//!   the in-order [`Interpreter`](crate::program::Interpreter);
//! * the byte-granular [`FuncMem`] image at that point;
//! * a [`WarmTrace`] — the program-order stream of instruction-fetch, load
//!   and store line touches plus the conditional-branch outcomes — from
//!   which warmed cache and branch-predictor state can be *replayed* for any
//!   memory-hierarchy configuration.
//!
//! The trace is what makes one snapshot serve a whole parameter sweep: the
//! expensive part of warm-up (executing the program) happens once, and each
//! sweep point derives its own warmed caches by replaying the trace against
//! its own geometry (`pre-mem`'s `warm_replay`). Snapshots are captured
//! per (workload, params, warmup-uops) and forked per sweep point.
//!
//! Snapshots serialize to a line-oriented text format ([`SimSnapshot::to_text`]
//! / [`SimSnapshot::from_text`]) that round-trips exactly, so a warmed image
//! can be stored and restored across processes.

// Decode paths here feed the fault-tolerant stores: a failure must surface as
// a typed error (and degrade to a cold run), never unwind.
#![deny(clippy::unwrap_used, clippy::expect_used)]

use crate::mem::FuncMem;
use crate::program::{Interpreter, Program};
use crate::reg::NUM_ARCH_REGS;
use std::fmt::Write as _;

/// One cache-relevant event of the warm-up execution, in program order.
///
/// Addresses are byte addresses; the replay applies its own line alignment,
/// so one trace serves any line size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WarmEvent {
    /// An instruction fetch touched this address (one event per new fetch
    /// line, mirroring the pipeline's line-granular fetch).
    Ifetch(u64),
    /// A demand load read this address.
    Load(u64),
    /// A committed store wrote this address.
    Store(u64),
}

/// One conditional-branch outcome of the warm-up execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WarmBranch {
    /// PC of the branch.
    pub pc: u32,
    /// Whether it was taken.
    pub taken: bool,
    /// The PC executed next (the branch target when taken).
    pub target: u32,
}

/// Instruction-fetch line size assumed by the trace's ifetch deduplication.
/// This mirrors the pipeline's fetch stage: PCs are program indices scaled
/// by 4 bytes and fetched in 64-byte lines.
const FETCH_LINE_BYTES: u64 = 64;

/// The program-order warm-up trace: memory events interleaved exactly as
/// the interpreter produced them (so replay reproduces LRU interactions in
/// shared levels) plus the branch outcomes for predictor warming.
#[derive(Debug, Clone, Default)]
pub struct WarmTrace {
    /// Ifetch/load/store events in program order.
    pub events: Vec<WarmEvent>,
    /// Conditional-branch outcomes in program order.
    pub branches: Vec<WarmBranch>,
    /// Last recorded ifetch line (capture-time deduplication state; not
    /// serialized and irrelevant to replay).
    last_fetch_line: Option<u64>,
}

impl PartialEq for WarmTrace {
    fn eq(&self, other: &Self) -> bool {
        self.events == other.events && self.branches == other.branches
    }
}

impl WarmTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        WarmTrace::default()
    }

    /// Records the instruction fetch for `pc`, deduplicated per 64-byte
    /// fetch line exactly like the pipeline's fetch stage (which only
    /// touches the instruction cache when fetch crosses into a new line).
    pub fn record_ifetch(&mut self, pc: u32) {
        let line = (u64::from(pc) * 4) & !(FETCH_LINE_BYTES - 1);
        if self.last_fetch_line != Some(line) {
            self.last_fetch_line = Some(line);
            self.events.push(WarmEvent::Ifetch(line));
        }
    }

    /// Records a demand load of `addr`.
    pub fn record_load(&mut self, addr: u64) {
        self.events.push(WarmEvent::Load(addr));
    }

    /// Records a committed store to `addr`.
    pub fn record_store(&mut self, addr: u64) {
        self.events.push(WarmEvent::Store(addr));
    }

    /// Records a conditional-branch outcome.
    pub fn record_branch(&mut self, pc: u32, taken: bool, target: u32) {
        self.branches.push(WarmBranch { pc, taken, target });
    }

    /// Total number of memory events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// A serializable warmed-up simulation start: architectural registers, PC,
/// functional-memory image and the warm-up trace.
///
/// Captured once per (workload, params, warmup-uops) by
/// [`SimSnapshot::capture`] and forked (cloned) per sweep point; the
/// configuration-dependent warmed structures (caches, branch predictor) are
/// derived from [`SimSnapshot::trace`] by the consumer.
#[derive(Debug, Clone, PartialEq)]
pub struct SimSnapshot {
    /// The requested warm-up budget in micro-ops.
    pub warmup_uops: u64,
    /// Micro-ops actually executed (less than `warmup_uops` when the
    /// program retired completely during warm-up).
    pub executed: u64,
    /// `true` when the program retired completely during warm-up.
    pub halted: bool,
    /// Architectural register file after warm-up.
    pub regs: [u64; NUM_ARCH_REGS],
    /// Next PC to execute.
    pub pc: u32,
    /// Functional-memory image after warm-up.
    pub mem: FuncMem,
    /// The cache/predictor warming trace.
    pub trace: WarmTrace,
}

impl SimSnapshot {
    /// Executes `warmup_uops` micro-ops of `program` on the in-order
    /// interpreter, collecting the warm trace, and captures the resulting
    /// state.
    pub fn capture(program: &Program, warmup_uops: u64) -> SimSnapshot {
        SimSnapshot::capture_windowed(program, warmup_uops, warmup_uops)
    }

    /// Like [`SimSnapshot::capture`], but only the final `trace_window`
    /// micro-ops of the warm-up contribute to the warm trace; the earlier
    /// `warmup_uops − trace_window` micro-ops execute untraced.
    ///
    /// Interval sampling uses this to take snapshots deep into a program
    /// without carrying (and replaying) the entire execution history: the
    /// architectural state is exact regardless of the window, while cache
    /// and predictor warming come from the most recent window only.
    /// `trace_window ≥ warmup_uops` is equivalent to a full-trace capture.
    pub fn capture_windowed(program: &Program, warmup_uops: u64, trace_window: u64) -> SimSnapshot {
        let mut interp = Interpreter::new(program);
        let mut trace = WarmTrace::new();
        let untraced = warmup_uops.saturating_sub(trace_window);
        let mut executed = interp.run(untraced);
        executed += interp.run_warm(warmup_uops - executed, &mut trace);
        let halted = interp.halted();
        let pc = interp.pc();
        let regs = *interp.regs();
        SimSnapshot {
            warmup_uops,
            executed,
            halted,
            regs,
            pc,
            mem: interp.into_memory(),
            trace,
        }
    }

    /// Serializes the snapshot to the line-oriented text format.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str("pre-snapshot v1\n");
        let _ = writeln!(out, "warmup_uops {}", self.warmup_uops);
        let _ = writeln!(out, "executed {}", self.executed);
        let _ = writeln!(out, "halted {}", u8::from(self.halted));
        let _ = writeln!(out, "pc {}", self.pc);
        out.push_str("regs");
        for r in &self.regs {
            let _ = write!(out, " {r}");
        }
        out.push('\n');
        for (page_no, data, written) in self.mem.page_images() {
            let _ = write!(out, "page {page_no} ");
            for b in data {
                let _ = write!(out, "{b:02x}");
            }
            for w in written {
                let _ = write!(out, " {w:x}");
            }
            out.push('\n');
        }
        for event in &self.trace.events {
            let _ = match event {
                WarmEvent::Ifetch(a) => writeln!(out, "I {a}"),
                WarmEvent::Load(a) => writeln!(out, "L {a}"),
                WarmEvent::Store(a) => writeln!(out, "S {a}"),
            };
        }
        for b in &self.trace.branches {
            let _ = writeln!(out, "B {} {} {}", b.pc, u8::from(b.taken), b.target);
        }
        out.push_str("end\n");
        out
    }

    /// Parses the text format written by [`SimSnapshot::to_text`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed line.
    pub fn from_text(text: &str) -> Result<SimSnapshot, String> {
        let mut lines = text.lines();
        if lines.next() != Some("pre-snapshot v1") {
            return Err("not a pre-snapshot v1 file".to_string());
        }
        let mut snap = SimSnapshot {
            warmup_uops: 0,
            executed: 0,
            halted: false,
            regs: [0; NUM_ARCH_REGS],
            pc: 0,
            mem: FuncMem::new(),
            trace: WarmTrace::new(),
        };
        let mut saw_end = false;
        for line in lines {
            let mut parts = line.split_ascii_whitespace();
            let tag = parts.next().unwrap_or("");
            let mut next_u64 = |what: &str| -> Result<u64, String> {
                parts
                    .next()
                    .and_then(|v| v.parse::<u64>().ok())
                    .ok_or_else(|| format!("bad {what} in line: {line}"))
            };
            match tag {
                "warmup_uops" => snap.warmup_uops = next_u64("warmup_uops")?,
                "executed" => snap.executed = next_u64("executed")?,
                "halted" => snap.halted = next_u64("halted")? != 0,
                "pc" => {
                    snap.pc = u32::try_from(next_u64("pc")?)
                        .map_err(|_| format!("pc out of range in line: {line}"))?;
                }
                "regs" => {
                    for (i, slot) in snap.regs.iter_mut().enumerate() {
                        *slot = next_u64(&format!("reg {i}"))?;
                    }
                }
                "page" => {
                    let page_no = next_u64("page number")?;
                    let hex = parts
                        .next()
                        .ok_or_else(|| "page without payload".to_string())?;
                    if hex.len() != FuncMem::PAGE_BYTES * 2 {
                        return Err(format!("page {page_no}: bad payload length"));
                    }
                    let mut data = vec![0u8; FuncMem::PAGE_BYTES];
                    for (i, byte) in data.iter_mut().enumerate() {
                        *byte = u8::from_str_radix(&hex[i * 2..i * 2 + 2], 16)
                            .map_err(|_| format!("page {page_no}: bad payload hex"))?;
                    }
                    let written: Vec<u64> = parts
                        .map(|w| u64::from_str_radix(w, 16))
                        .collect::<Result<_, _>>()
                        .map_err(|_| format!("page {page_no}: bad bitmap hex"))?;
                    snap.mem.install_page(page_no, &data, &written);
                    continue;
                }
                "I" => snap.trace.events.push(WarmEvent::Ifetch(next_u64("addr")?)),
                "L" => snap.trace.events.push(WarmEvent::Load(next_u64("addr")?)),
                "S" => snap.trace.events.push(WarmEvent::Store(next_u64("addr")?)),
                "B" => {
                    let pc = u32::try_from(next_u64("branch pc")?)
                        .map_err(|_| format!("branch pc out of range: {line}"))?;
                    let taken = next_u64("taken flag")? != 0;
                    let target = u32::try_from(next_u64("branch target")?)
                        .map_err(|_| format!("branch target out of range: {line}"))?;
                    snap.trace.record_branch(pc, taken, target);
                }
                "end" => {
                    saw_end = true;
                    break;
                }
                other => return Err(format!("unknown snapshot line tag `{other}`")),
            }
        }
        if !saw_end {
            return Err("truncated snapshot (no end marker)".to_string());
        }
        Ok(snap)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::isa::{AluOp, BranchCond, StaticInst};
    use crate::reg::ArchReg;

    fn looping_program() -> Program {
        // r1 = counter, r2 = base address; stores then reloads a value.
        let mut p = Program::new("snapshot-test");
        p.insts = vec![
            StaticInst::load_imm(ArchReg::int(1), 0),
            StaticInst::load_imm(ArchReg::int(2), 0x1000),
            StaticInst::store(ArchReg::int(1), ArchReg::int(2), 0),
            StaticInst::load(ArchReg::int(3), ArchReg::int(2), 0),
            StaticInst::int_alu_imm(AluOp::Add, ArchReg::int(1), ArchReg::int(1), 1),
            StaticInst::branch(BranchCond::Lt, ArchReg::int(1), ArchReg::int(4), 2),
        ];
        p.initial_regs = vec![(ArchReg::int(4), 50)];
        p
    }

    #[test]
    fn capture_collects_events_and_state() {
        let program = looping_program();
        let snap = SimSnapshot::capture(&program, 100);
        assert_eq!(snap.executed, 100);
        assert!(!snap.halted);
        assert!(!snap.trace.is_empty());
        assert!(snap.trace.branches.iter().any(|b| b.taken));
        assert!(snap.mem.resident_pages() > 0);
        // Interleaving preserved: first events include an ifetch before any
        // load or store.
        assert!(matches!(snap.trace.events[0], WarmEvent::Ifetch(_)));
    }

    #[test]
    fn capture_stops_at_program_end() {
        let program = looping_program();
        let snap = SimSnapshot::capture(&program, 1_000_000);
        assert!(snap.halted);
        assert!(snap.executed < 1_000_000);
    }

    #[test]
    fn ifetch_events_are_line_deduplicated() {
        let program = looping_program();
        let snap = SimSnapshot::capture(&program, 64);
        let ifetches = snap
            .trace
            .events
            .iter()
            .filter(|e| matches!(e, WarmEvent::Ifetch(_)))
            .count();
        // Six instructions fit in one 64-byte line, so the loop touches the
        // same line every iteration and the dedup suppresses repeats.
        assert!(
            ifetches < 3,
            "expected deduplicated ifetches, got {ifetches}"
        );
    }

    #[test]
    fn text_roundtrip_is_exact() {
        let program = looping_program();
        let snap = SimSnapshot::capture(&program, 80);
        let text = snap.to_text();
        let back = SimSnapshot::from_text(&text).expect("parses");
        assert_eq!(back, snap);
        assert_eq!(back.mem.written_bytes(), snap.mem.written_bytes());
        // The restored memory reads identically (spot-check the stored word
        // and an unwritten location).
        assert_eq!(back.mem.load_u64(0x1000), snap.mem.load_u64(0x1000));
        assert_eq!(back.mem.load_u64(0x9999), snap.mem.load_u64(0x9999));
    }

    #[test]
    fn windowed_capture_matches_state_with_bounded_trace() {
        let program = looping_program();
        let full = SimSnapshot::capture(&program, 120);
        let windowed = SimSnapshot::capture_windowed(&program, 120, 30);
        // Architectural state is exact regardless of the trace window.
        assert_eq!(windowed.regs, full.regs);
        assert_eq!(windowed.pc, full.pc);
        assert_eq!(windowed.executed, full.executed);
        assert_eq!(
            windowed.mem.written_bytes(),
            full.mem.written_bytes(),
            "memory image must not depend on the trace window"
        );
        // The trace only covers the final window.
        assert!(windowed.trace.branches.len() < full.trace.branches.len());
        assert!(windowed.trace.len() < full.trace.len());
        // A window at least as large as the warm-up is a full capture.
        let wide = SimSnapshot::capture_windowed(&program, 120, 500);
        assert_eq!(wide, full);
    }

    #[test]
    fn from_text_rejects_garbage() {
        assert!(SimSnapshot::from_text("nope").is_err());
        assert!(SimSnapshot::from_text("pre-snapshot v1\n").is_err());
        assert!(SimSnapshot::from_text("pre-snapshot v1\nwat 3\nend\n").is_err());
    }
}
