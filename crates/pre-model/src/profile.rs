//! Interval profiling and clustering for SimPoint-style sampled simulation.
//!
//! Detailed simulation cost scales linearly with committed micro-ops, but
//! most programs spend their time repeating a small number of phases. The
//! SimPoint methodology exploits this: slice the functional execution into
//! fixed-size intervals, summarize each interval by a **Basic Block Vector**
//! (execution counts keyed by branch-to-branch PC spans, weighted by span
//! length), cluster the vectors, and simulate only one representative
//! interval per cluster. The full-run statistics are then extrapolated by
//! weighting each representative by its cluster population.
//!
//! This module provides the first two stages — [`profile_intervals`] runs
//! the functional [`Interpreter`] and collects one [`Bbv`] per interval, and
//! [`cluster_intervals`] is a fully deterministic in-tree k-means (random
//! projection to [`PROJECTION_DIMS`] dimensions with per-span signs derived
//! from [`StableHasher`], centroid seeding via [`SmallRng`], fixed iteration
//! cap). Everything is serial and free of ambient randomness, so the same
//! program always yields byte-identical BBVs and identical cluster
//! assignments, independent of thread count or host.
//!
//! The simulation and extrapolation stages live in `pre-sim::sample`, which
//! forks each representative from a windowed [`SimSnapshot`] (see
//! [`SimSnapshot::capture_windowed`](crate::snapshot::SimSnapshot::capture_windowed)).

use crate::hash::StableHasher;
use crate::program::{Interpreter, Program};
use crate::rng::SmallRng;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Dimensionality of the random projection used before k-means. SimPoint
/// projects its (huge, sparse) BBVs down to a small dense vector; 32
/// dimensions keeps distances meaningful for the span counts seen here while
/// making the clustering itself trivially cheap.
pub const PROJECTION_DIMS: usize = 32;

/// Iteration cap for the k-means loop. Lloyd's algorithm on a few hundred
/// 32-dimensional points converges in a handful of iterations; the cap only
/// bounds pathological oscillation.
const KMEANS_MAX_ITERS: usize = 50;

/// A Basic Block Vector: execution counts keyed by branch-to-branch PC
/// spans. A span is the run of consecutively-executed PCs between two
/// control-flow boundaries (a conditional branch, or any taken transfer);
/// its count accumulates the number of micro-ops executed inside the span,
/// so long straight-line blocks weigh proportionally more than short ones —
/// the standard SimPoint weighting.
///
/// The map is a `BTreeMap`, so iteration order (and [`Bbv::to_text`]) is a
/// pure function of the execution, which is what the determinism golden
/// tests byte-compare.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bbv {
    /// `(span_start_pc, span_end_pc) → executed micro-ops` counts.
    pub counts: BTreeMap<(u32, u32), u64>,
}

impl Bbv {
    /// Creates an empty vector.
    pub fn new() -> Self {
        Bbv::default()
    }

    /// Adds `uops` executed micro-ops to the span `[start, end]`.
    pub fn record_span(&mut self, start: u32, end: u32, uops: u64) {
        *self.counts.entry((start, end)).or_insert(0) += uops;
    }

    /// Total micro-ops accumulated over all spans.
    pub fn total_uops(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Number of distinct spans.
    pub fn num_spans(&self) -> usize {
        self.counts.len()
    }

    /// Canonical text rendering (`span <start> <end> <count>` lines in key
    /// order); two executions of the same program produce byte-identical
    /// text, which the determinism tests rely on.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for (&(start, end), &count) in &self.counts {
            let _ = writeln!(out, "span {start} {end} {count}");
        }
        out
    }

    /// Projects the vector onto [`PROJECTION_DIMS`] dimensions and
    /// normalizes to unit L2 length (zero vector for an empty BBV). Each
    /// span key contributes its count along a ±1 direction derived from a
    /// [`StableHasher`]-seeded [`SmallRng`], so the projection of a given
    /// span is identical in every interval, every run and every process.
    pub fn project(&self) -> [f64; PROJECTION_DIMS] {
        let mut v = [0f64; PROJECTION_DIMS];
        for (&(start, end), &count) in &self.counts {
            let mut h = StableHasher::new();
            h.write_str("bbv-projection");
            h.write_u64(u64::from(start));
            h.write_u64(u64::from(end));
            let mut rng = SmallRng::seed_from_u64(h.finish());
            let mut bits = rng.next_u64();
            for (d, slot) in v.iter_mut().enumerate() {
                if d == 64 {
                    bits = rng.next_u64();
                }
                let sign = if bits & 1 == 1 { 1.0 } else { -1.0 };
                bits >>= 1;
                *slot += sign * count as f64;
            }
        }
        let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
        if norm > 0.0 {
            for x in &mut v {
                *x /= norm;
            }
        }
        v
    }
}

/// One profiled interval: its position in the committed-uop stream and its
/// Basic Block Vector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfiledInterval {
    /// Index of the interval in profiling order.
    pub index: usize,
    /// Committed-uop offset (from program start) at which the interval
    /// begins; forking a snapshot at this offset and running
    /// [`ProfiledInterval::len_uops`] micro-ops reproduces the interval.
    pub start_uop: u64,
    /// Committed micro-ops in the interval (the configured interval size,
    /// except for a shorter final interval when the program halts or the
    /// budget ends mid-interval).
    pub len_uops: u64,
    /// The interval's Basic Block Vector.
    pub bbv: Bbv,
}

/// The result of the profiling pass: every interval of the execution with
/// its BBV.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntervalProfile {
    /// Interval size in committed micro-ops that was requested.
    pub interval_uops: u64,
    /// Committed-uop offset at which profiling started (outer functional
    /// warm-up that is excluded from the profile).
    pub start_uop: u64,
    /// The profiled intervals, in execution order.
    pub intervals: Vec<ProfiledInterval>,
    /// `true` when the program halted within the profiling budget.
    pub halted: bool,
}

impl IntervalProfile {
    /// Total committed micro-ops covered by the profile.
    pub fn total_uops(&self) -> u64 {
        self.intervals.iter().map(|iv| iv.len_uops).sum()
    }
}

/// Runs `program` on the functional interpreter and collects a [`Bbv`] per
/// interval of `interval_uops` committed micro-ops, covering at most
/// `max_uops` after skipping the first `skip_uops` (the outer warm-up).
///
/// The pass is purely functional and serial: its output depends only on
/// `(program, interval_uops, max_uops, skip_uops)`.
///
/// # Panics
///
/// Panics if `interval_uops` is zero.
pub fn profile_intervals(
    program: &Program,
    interval_uops: u64,
    max_uops: u64,
    skip_uops: u64,
) -> IntervalProfile {
    assert!(interval_uops > 0, "interval size must be positive");
    let mut interp = Interpreter::new(program);
    interp.run(skip_uops);
    let mut intervals = Vec::new();
    let mut done = 0u64;
    while done < max_uops && !interp.halted() {
        let target = interval_uops.min(max_uops - done);
        let mut bbv = Bbv::new();
        let mut executed = 0u64;
        let mut span_start = interp.pc();
        let mut span_uops = 0u64;
        let mut last_pc = span_start;
        while executed < target {
            let pc = interp.pc();
            let is_branch = program
                .inst_at(pc)
                .map(|inst| inst.opcode.is_cond_branch())
                .unwrap_or(false);
            if !interp.step() {
                break;
            }
            executed += 1;
            span_uops += 1;
            last_pc = pc;
            let next = interp.pc();
            if is_branch || next != pc.wrapping_add(1) {
                bbv.record_span(span_start, pc, span_uops);
                span_start = next;
                span_uops = 0;
            }
        }
        if span_uops > 0 {
            // Close the span left open at the interval boundary.
            bbv.record_span(span_start, last_pc, span_uops);
        }
        if executed == 0 {
            break;
        }
        intervals.push(ProfiledInterval {
            index: intervals.len(),
            start_uop: skip_uops + done,
            len_uops: executed,
            bbv,
        });
        done += executed;
    }
    IntervalProfile {
        interval_uops,
        start_uop: skip_uops,
        intervals,
        halted: interp.halted(),
    }
}

/// One representative interval chosen by the clusterer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Representative {
    /// Cluster this representative stands for.
    pub cluster: usize,
    /// Index (into [`IntervalProfile::intervals`]) of the chosen interval.
    pub interval: usize,
    /// Number of intervals in the cluster; the extrapolation weight.
    pub weight: u64,
}

/// The output of [`cluster_intervals`]: a cluster id per interval and one
/// weighted representative per non-empty cluster.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Clustering {
    /// Cluster id assigned to each interval, in interval order.
    pub assignments: Vec<usize>,
    /// One representative per cluster, sorted by interval index. The
    /// weights sum to the number of intervals.
    pub representatives: Vec<Representative>,
}

impl Clustering {
    /// Number of clusters (= number of representatives).
    pub fn num_clusters(&self) -> usize {
        self.representatives.len()
    }
}

/// Clusters the profiled intervals into at most `k` groups with a
/// deterministic k-means over the random-projected BBVs, and picks the
/// member closest to each centroid as the cluster's representative.
///
/// Determinism: the projection signs come from a stable hash of each span
/// key, centroid seeding uses [`SmallRng::seed_from_u64`]`(seed)`, the
/// iteration count is capped, and every tie (nearest centroid, closest
/// member) breaks toward the lowest index. The function is serial, so its
/// output is independent of `PRE_THREADS`.
///
/// A shorter final interval (the tail of a program that halts mid-interval)
/// scales differently from full intervals, so it is kept out of k-means and
/// returned as its own singleton cluster with weight 1.
pub fn cluster_intervals(profile: &IntervalProfile, k: usize, seed: u64) -> Clustering {
    let n = profile.intervals.len();
    if n == 0 {
        return Clustering {
            assignments: Vec::new(),
            representatives: Vec::new(),
        };
    }
    // Partition full intervals from the (at most one, but be general)
    // partial tail intervals.
    let full: Vec<usize> = (0..n)
        .filter(|&i| profile.intervals[i].len_uops == profile.interval_uops)
        .collect();
    let partial: Vec<usize> = (0..n)
        .filter(|&i| profile.intervals[i].len_uops != profile.interval_uops)
        .collect();

    let mut assignments = vec![usize::MAX; n];
    let mut representatives = Vec::new();

    if !full.is_empty() {
        let points: Vec<[f64; PROJECTION_DIMS]> = full
            .iter()
            .map(|&i| profile.intervals[i].bbv.project())
            .collect();
        let k_eff = k.max(1).min(full.len());

        // Seed centroids on a shuffled subset of the points.
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut order: Vec<usize> = (0..full.len()).collect();
        rng.shuffle(&mut order);
        let mut centroids: Vec<[f64; PROJECTION_DIMS]> =
            order[..k_eff].iter().map(|&p| points[p]).collect();

        let mut assign = vec![0usize; full.len()];
        for _ in 0..KMEANS_MAX_ITERS {
            // Assignment step; ties break toward the lower cluster index
            // because only a strictly smaller distance wins.
            let mut changed = false;
            for (p, point) in points.iter().enumerate() {
                let mut best = 0usize;
                let mut best_d = f64::INFINITY;
                for (c, centroid) in centroids.iter().enumerate() {
                    let d = sq_dist(point, centroid);
                    if d < best_d {
                        best_d = d;
                        best = c;
                    }
                }
                if assign[p] != best {
                    assign[p] = best;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
            // Update step; an empty cluster keeps its previous centroid.
            for (c, centroid) in centroids.iter_mut().enumerate() {
                let mut sum = [0f64; PROJECTION_DIMS];
                let mut count = 0u64;
                for (p, point) in points.iter().enumerate() {
                    if assign[p] == c {
                        for (s, x) in sum.iter_mut().zip(point.iter()) {
                            *s += x;
                        }
                        count += 1;
                    }
                }
                if count > 0 {
                    for s in &mut sum {
                        *s /= count as f64;
                    }
                    *centroid = sum;
                }
            }
        }

        // Compact away empty clusters and pick representatives: the member
        // closest to its centroid, ties toward the lowest interval index.
        for (c, centroid) in centroids.iter().enumerate().take(k_eff) {
            let members: Vec<usize> = (0..full.len()).filter(|&p| assign[p] == c).collect();
            if members.is_empty() {
                continue;
            }
            let mut best_p = members[0];
            let mut best_d = f64::INFINITY;
            for &p in &members {
                let d = sq_dist(&points[p], centroid);
                if d < best_d {
                    best_d = d;
                    best_p = p;
                }
            }
            let next_cluster = representatives.len();
            for &p in &members {
                assignments[full[p]] = next_cluster;
            }
            representatives.push(Representative {
                cluster: next_cluster,
                interval: full[best_p],
                weight: members.len() as u64,
            });
        }
    }

    // Partial tail intervals: singleton clusters with weight 1.
    for &i in &partial {
        let next_cluster = representatives.len();
        assignments[i] = next_cluster;
        representatives.push(Representative {
            cluster: next_cluster,
            interval: i,
            weight: 1,
        });
    }

    representatives.sort_by_key(|r| r.interval);
    Clustering {
        assignments,
        representatives,
    }
}

fn sq_dist(a: &[f64; PROJECTION_DIMS], b: &[f64; PROJECTION_DIMS]) -> f64 {
    let mut d = 0.0;
    for (x, y) in a.iter().zip(b.iter()) {
        let diff = x - y;
        d += diff * diff;
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{AluOp, BranchCond, StaticInst};
    use crate::reg::ArchReg;

    /// A program with two distinct phases: a store-heavy loop followed by a
    /// pure-ALU loop, so interval BBVs fall into two clear clusters.
    fn two_phase_program(iters_per_phase: u64) -> Program {
        let mut p = Program::new("profile-test");
        p.insts = vec![
            // Phase 1: store loop (pcs 0..=4).
            StaticInst::load_imm(ArchReg::int(1), 0),
            StaticInst::load_imm(ArchReg::int(2), 0x1000),
            StaticInst::store(ArchReg::int(1), ArchReg::int(2), 0),
            StaticInst::int_alu_imm(AluOp::Add, ArchReg::int(1), ArchReg::int(1), 1),
            StaticInst::branch(BranchCond::Lt, ArchReg::int(1), ArchReg::int(4), 2),
            // Phase 2: ALU loop (pcs 5..=8).
            StaticInst::load_imm(ArchReg::int(1), 0),
            StaticInst::int_alu_imm(AluOp::Add, ArchReg::int(3), ArchReg::int(3), 7),
            StaticInst::int_alu_imm(AluOp::Add, ArchReg::int(1), ArchReg::int(1), 1),
            StaticInst::branch(BranchCond::Lt, ArchReg::int(1), ArchReg::int(4), 6),
        ];
        p.initial_regs = vec![(ArchReg::int(4), iters_per_phase)];
        p
    }

    #[test]
    fn profiling_slices_exact_intervals() {
        let program = two_phase_program(500);
        let profile = profile_intervals(&program, 100, 1_000, 0);
        assert!(!profile.intervals.is_empty());
        for iv in &profile.intervals[..profile.intervals.len() - 1] {
            assert_eq!(iv.len_uops, 100);
        }
        assert_eq!(
            profile.total_uops(),
            profile
                .intervals
                .iter()
                .map(|iv| iv.bbv.total_uops())
                .sum::<u64>(),
            "BBV span counts account for every profiled uop"
        );
        // Offsets tile the stream.
        for (i, iv) in profile.intervals.iter().enumerate() {
            assert_eq!(iv.index, i);
            if i > 0 {
                let prev = &profile.intervals[i - 1];
                assert_eq!(iv.start_uop, prev.start_uop + prev.len_uops);
            }
        }
    }

    #[test]
    fn profiling_respects_skip_offset() {
        let program = two_phase_program(500);
        let a = profile_intervals(&program, 100, 400, 0);
        let b = profile_intervals(&program, 100, 300, 100);
        // Interval i+1 of the unskipped profile is interval i of the
        // profile that skipped one interval.
        assert_eq!(b.start_uop, 100);
        assert_eq!(a.intervals[1].bbv, b.intervals[0].bbv);
        assert_eq!(a.intervals[1].start_uop, b.intervals[0].start_uop);
    }

    #[test]
    fn bbvs_are_deterministic_and_textually_stable() {
        let program = two_phase_program(300);
        let a = profile_intervals(&program, 128, 2_000, 0);
        let b = profile_intervals(&program, 128, 2_000, 0);
        assert_eq!(a, b);
        for (x, y) in a.intervals.iter().zip(b.intervals.iter()) {
            assert_eq!(x.bbv.to_text(), y.bbv.to_text());
        }
        assert!(a.intervals[0].bbv.num_spans() > 0);
    }

    #[test]
    fn projection_is_stable_and_normalized() {
        let mut bbv = Bbv::new();
        bbv.record_span(0, 4, 500);
        bbv.record_span(6, 8, 120);
        let v = bbv.project();
        assert_eq!(v, bbv.project());
        let norm: f64 = v.iter().map(|x| x * x).sum();
        assert!((norm - 1.0).abs() < 1e-9);
        assert_eq!(Bbv::new().project(), [0.0; PROJECTION_DIMS]);
    }

    #[test]
    fn clustering_separates_phases_and_weights_sum() {
        let program = two_phase_program(2_000);
        let profile = profile_intervals(&program, 250, 10_000, 0);
        let clustering = cluster_intervals(&profile, 4, 42);
        assert_eq!(clustering.assignments.len(), profile.intervals.len());
        let weight_sum: u64 = clustering.representatives.iter().map(|r| r.weight).sum();
        assert_eq!(weight_sum, profile.intervals.len() as u64);
        // Every interval got a cluster.
        assert!(clustering.assignments.iter().all(|&c| c != usize::MAX));
        // The two program phases end up in different clusters: the first
        // and last full intervals must not share one.
        let last_full = profile
            .intervals
            .iter()
            .rev()
            .find(|iv| iv.len_uops == 250)
            .map(|iv| iv.index)
            .unwrap();
        assert_ne!(
            clustering.assignments[0], clustering.assignments[last_full],
            "store phase and ALU phase should cluster apart"
        );
        // Representatives are valid interval indices with the right cluster.
        for rep in &clustering.representatives {
            assert_eq!(clustering.assignments[rep.interval], rep.cluster);
            assert!(rep.weight >= 1);
        }
    }

    #[test]
    fn clustering_is_deterministic_across_repeats() {
        let program = two_phase_program(1_000);
        let profile = profile_intervals(&program, 200, 8_000, 0);
        let a = cluster_intervals(&profile, 5, 7);
        let b = cluster_intervals(&profile, 5, 7);
        assert_eq!(a, b);
        // Different seed may pick different clusters, but stays valid.
        let c = cluster_intervals(&profile, 5, 8);
        assert_eq!(
            c.representatives.iter().map(|r| r.weight).sum::<u64>(),
            profile.intervals.len() as u64
        );
    }

    #[test]
    fn partial_tail_interval_becomes_singleton_cluster() {
        let program = two_phase_program(100);
        // Program halts after ~2×(2 + 100×3 + ...) uops; pick an interval
        // size that cannot divide the run evenly.
        let profile = profile_intervals(&program, 128, 100_000, 0);
        assert!(profile.halted);
        let tail = profile.intervals.last().unwrap();
        assert!(tail.len_uops < 128);
        let clustering = cluster_intervals(&profile, 2, 1);
        let tail_cluster = clustering.assignments[tail.index];
        let tail_rep = clustering
            .representatives
            .iter()
            .find(|r| r.cluster == tail_cluster)
            .unwrap();
        assert_eq!(tail_rep.interval, tail.index);
        assert_eq!(tail_rep.weight, 1);
    }

    #[test]
    fn k_larger_than_intervals_is_fine() {
        let program = two_phase_program(50);
        let profile = profile_intervals(&program, 64, 100_000, 0);
        let clustering = cluster_intervals(&profile, 64, 3);
        assert_eq!(
            clustering.num_clusters(),
            profile.intervals.len(),
            "with k ≥ n every interval is its own cluster"
        );
        let empty = IntervalProfile {
            interval_uops: 64,
            start_uop: 0,
            intervals: Vec::new(),
            halted: true,
        };
        assert_eq!(cluster_intervals(&empty, 4, 0).num_clusters(), 0);
    }
}
