//! Simulation statistics.
//!
//! A single [`SimStats`] instance accumulates everything a run produces:
//! cycle and instruction counts, pipeline-event counts (used by the energy
//! model in `pre-energy`), cache and DRAM activity, and runahead-specific
//! counters (invocations, interval lengths, prefetch coverage, resource
//! occupancy at runahead entry) that back the paper's figures and text
//! statistics.

use std::fmt;
use std::fmt::Write as _;

/// A fixed-bucket histogram over `u64` samples.
///
/// Used for runahead-interval lengths (Stat B: "27 % of runahead intervals
/// take less than 20 cycles").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    bounds: Vec<u64>,
    counts: Vec<u64>,
    total: u64,
    sum: u64,
    max: u64,
}

impl Histogram {
    /// Creates a histogram with the given ascending bucket upper bounds.
    /// A final unbounded bucket is added automatically.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is not strictly ascending.
    pub fn new(bounds: &[u64]) -> Self {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            total: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Default histogram for runahead-interval lengths (cycles).
    pub fn runahead_intervals() -> Self {
        Histogram::new(&[10, 20, 50, 100, 200, 500, 1000])
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value < b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.total += 1;
        self.sum += value;
        self.max = self.max.max(value);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Mean of recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Largest recorded sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Fraction of samples strictly below `threshold`.
    ///
    /// `threshold` must be one of the configured bucket bounds for an exact
    /// answer; otherwise the closest not-exceeding bound is used.
    pub fn fraction_below(&self, threshold: u64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let mut below = 0;
        for (i, &b) in self.bounds.iter().enumerate() {
            if b <= threshold {
                below += self.counts[i];
            }
        }
        below as f64 / self.total as f64
    }

    /// Iterates over `(upper_bound, count)` pairs; the final pair uses
    /// `u64::MAX` as its bound.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.bounds
            .iter()
            .copied()
            .chain(std::iter::once(u64::MAX))
            .zip(self.counts.iter().copied())
    }

    /// Folds `weight` copies of `other` into this histogram (bucket counts,
    /// totals and sums scale; the max is the max of maxes). When the bucket
    /// bounds differ — e.g. an empty default merged with a custom histogram —
    /// the non-empty side's bounds are adopted; merging two non-empty
    /// histograms with different bounds keeps `self`'s bounds and folds
    /// `other`'s samples through its aggregate counters only.
    pub fn merge_scaled(&mut self, other: &Histogram, weight: u64) {
        if self.total == 0 && self.bounds != other.bounds {
            self.bounds = other.bounds.clone();
            self.counts = vec![0; other.counts.len()];
        }
        if self.bounds == other.bounds {
            for (c, o) in self.counts.iter_mut().zip(other.counts.iter()) {
                *c = c.wrapping_add(o.wrapping_mul(weight));
            }
        }
        self.total = self.total.wrapping_add(other.total.wrapping_mul(weight));
        self.sum = self.sum.wrapping_add(other.sum.wrapping_mul(weight));
        self.max = self.max.max(other.max);
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::runahead_intervals()
    }
}

/// A histogram over percentage samples (0–100), used for the per-class
/// free-physical-register occupancy observed at full-window stalls. The
/// buckets resolve the interesting low end ("&lt; 1 % free" is the pathology
/// the eager PRDQ drain exists to fix) as well as the paper's "~51 % free"
/// regime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PercentHistogram(Histogram);

impl PercentHistogram {
    /// Creates an empty percentage histogram.
    pub fn new() -> Self {
        PercentHistogram(Histogram::new(&[1, 5, 10, 25, 50, 75, 90]))
    }

    /// Records one sample, clamped to 0–100.
    pub fn record(&mut self, percent: u64) {
        self.0.record(percent.min(100));
    }

    /// Records a fraction in `[0, 1]` as a percentage.
    pub fn record_fraction(&mut self, fraction: f64) {
        self.record((fraction.clamp(0.0, 1.0) * 100.0).round() as u64);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.0.count()
    }

    /// Mean percentage (0 when empty).
    pub fn mean(&self) -> f64 {
        self.0.mean()
    }

    /// Fraction of samples strictly below `threshold` percent (which should
    /// be one of the bucket bounds for an exact answer).
    pub fn fraction_below(&self, threshold: u64) -> f64 {
        self.0.fraction_below(threshold)
    }

    /// Iterates over `(upper_bound, count)` pairs.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.0.buckets()
    }

    /// Folds `weight` copies of `other` into this histogram (see
    /// [`Histogram::merge_scaled`]).
    pub fn merge_scaled(&mut self, other: &PercentHistogram, weight: u64) {
        self.0.merge_scaled(&other.0, weight);
    }
}

impl Default for PercentHistogram {
    fn default() -> Self {
        PercentHistogram::new()
    }
}

/// Cycles the event-driven scheduler skipped in bulk (quiescent-cycle
/// fast-forward) instead of ticking one by one, split by pipeline mode.
///
/// This is *simulator performance* accounting, not an architectural
/// statistic: a fast-forwarded run models exactly the same machine as the
/// cycle-by-cycle reference, it merely spends less host time doing so. To
/// keep that guarantee checkable — [`SimStats`] equality between a
/// fast-forwarded run and the `--reference-scheduler` oracle — `PartialEq`
/// deliberately treats any two values as equal.
#[derive(Debug, Clone, Copy, Default)]
pub struct FfCycles {
    /// Normal-mode cycles skipped in bulk (full-window stalls).
    pub normal: u64,
    /// Runahead-mode cycles skipped in bulk (quiescent stretches of
    /// traditional-runahead and precise-runahead intervals).
    pub runahead: u64,
}

impl PartialEq for FfCycles {
    /// Always `true`: how many cycles were fast-forwarded is a property of
    /// the scheduler, not of the simulated machine (see the type docs).
    fn eq(&self, _other: &Self) -> bool {
        true
    }
}

/// How a simulation run ended.
///
/// Unlike [`FfCycles`] this participates in real [`SimStats`] equality: how a
/// run terminates is a property of the simulated machine and its budget, not
/// of the scheduler, so it must be bit-identical across the event-driven and
/// reference paths (and across cached vs recomputed results).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum TerminationKind {
    /// The run finished its work: the program halted or the uop budget was
    /// reached.
    #[default]
    Completed,
    /// The run hit the `max_cycles` safety cap before finishing its work.
    MaxCycles,
    /// The deadlock watchdog fired: a full watchdog window elapsed with no
    /// commit, and the run was aborted.
    Watchdog,
}

impl TerminationKind {
    /// Stable text name used by the kv serialization.
    pub fn as_str(self) -> &'static str {
        match self {
            TerminationKind::Completed => "completed",
            TerminationKind::MaxCycles => "max-cycles",
            TerminationKind::Watchdog => "watchdog",
        }
    }

    /// Parses a name written by [`TerminationKind::as_str`].
    pub fn parse(text: &str) -> Result<TerminationKind, String> {
        match text {
            "completed" => Ok(TerminationKind::Completed),
            "max-cycles" => Ok(TerminationKind::MaxCycles),
            "watchdog" => Ok(TerminationKind::Watchdog),
            other => Err(format!("unknown termination kind `{other}`")),
        }
    }

    /// The more severe of two termination kinds (`Completed` < `MaxCycles` <
    /// `Watchdog`); used when combining sampled slices into one result.
    pub fn worst(self, other: TerminationKind) -> TerminationKind {
        fn rank(k: TerminationKind) -> u8 {
            match k {
                TerminationKind::Completed => 0,
                TerminationKind::MaxCycles => 1,
                TerminationKind::Watchdog => 2,
            }
        }
        if rank(other) > rank(self) {
            other
        } else {
            self
        }
    }
}

impl fmt::Display for TerminationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// What kind of runahead event a [`RunaheadEvent`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunaheadEventKind {
    /// The core entered runahead mode.
    Entry,
    /// The core left runahead mode.
    Exit,
}

/// One runahead entry or exit event with the rename-resource occupancy
/// observed at that moment. The pipeline reports these through the
/// `pre-trace` tracer hooks (tools like `debug_stats` attach an in-memory
/// collector); `SimStats` itself carries only aggregates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunaheadEvent {
    /// Cycle at which the event occurred.
    pub cycle: u64,
    /// Entry or exit.
    pub kind: RunaheadEventKind,
    /// Free integer physical registers after the event was processed (for
    /// entries: after the eager PRDQ drain).
    pub int_free: usize,
    /// Free floating-point physical registers after the event.
    pub fp_free: usize,
    /// Integer registers released by the eager PRDQ drain (entry events).
    pub int_eager_freed: usize,
    /// Floating-point registers released by the eager drain (entry events).
    pub fp_eager_freed: usize,
    /// PRDQ entries allocated by runahead renaming during the interval
    /// (exit events; 0 on entries).
    pub prdq_allocated: u64,
}

/// Cap on the number of [`RunaheadEvent`]s kept per run by collectors (the
/// `pre-trace` interval log); long evaluations count the overflow instead of
/// growing without bound.
pub const MAX_RUNAHEAD_EVENTS: usize = 4096;

/// Running average of occupancy-style samples.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RunningAverage {
    sum: f64,
    samples: u64,
}

impl RunningAverage {
    /// Records one sample.
    pub fn record(&mut self, value: f64) {
        self.sum += value;
        self.samples += 1;
    }

    /// Mean of recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.sum / self.samples as f64
        }
    }

    /// Number of samples recorded.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Folds `weight` copies of `other` into this average (the mean of the
    /// merged average is the weighted mean of the two inputs).
    pub fn merge_scaled(&mut self, other: &RunningAverage, weight: u64) {
        self.sum += other.sum * weight as f64;
        self.samples = self
            .samples
            .wrapping_add(other.samples.wrapping_mul(weight));
    }
}

/// All statistics produced by one simulation run.
///
/// Fields are public counters incremented directly by the pipeline and the
/// runahead engines; derived metrics are provided as methods.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimStats {
    // ---- time -------------------------------------------------------------
    /// Total simulated core cycles.
    pub cycles: u64,
    /// Cycles the event scheduler fast-forwarded in bulk rather than ticking
    /// (simulator-performance accounting; excluded from equality — see
    /// [`FfCycles`]).
    pub ff_cycles: FfCycles,

    // ---- committed work ----------------------------------------------------
    /// Micro-ops committed (architecturally retired).
    pub committed_uops: u64,
    /// Committed loads.
    pub committed_loads: u64,
    /// Committed stores.
    pub committed_stores: u64,
    /// Committed conditional branches.
    pub committed_branches: u64,
    /// Committed conditional branches that were mispredicted.
    pub mispredicted_branches: u64,

    // ---- pipeline activity (energy events) ---------------------------------
    /// Micro-ops fetched (including wrong path and runahead mode).
    pub fetched_uops: u64,
    /// Micro-ops decoded.
    pub decoded_uops: u64,
    /// Micro-ops renamed.
    pub renamed_uops: u64,
    /// Micro-ops dispatched into the back-end.
    pub dispatched_uops: u64,
    /// Micro-ops issued to functional units.
    pub issued_uops: u64,
    /// Micro-ops that completed execution.
    pub executed_uops: u64,
    /// Micro-ops squashed (wrong path or runahead discard).
    pub squashed_uops: u64,
    /// Register-alias-table reads.
    pub rat_reads: u64,
    /// Register-alias-table writes.
    pub rat_writes: u64,
    /// Physical-register-file reads.
    pub prf_reads: u64,
    /// Physical-register-file writes.
    pub prf_writes: u64,
    /// Issue-queue writes (dispatch).
    pub iq_writes: u64,
    /// Issue-queue wakeup broadcasts.
    pub iq_wakeups: u64,
    /// Reorder-buffer writes.
    pub rob_writes: u64,
    /// Reorder-buffer reads (commit).
    pub rob_reads: u64,
    /// Load/store-queue associative searches.
    pub lsq_searches: u64,
    /// Loads satisfied by store-to-load forwarding (the forwarding store's
    /// byte range contained the load's).
    pub lsq_forwards: u64,
    /// Loads blocked because an older store's byte range only **partially**
    /// overlapped the load's (cannot forward, must wait for the store to
    /// commit and write memory).
    pub forward_blocked_partial: u64,
    /// Integer ALU operations executed.
    pub int_alu_ops: u64,
    /// Integer multiply operations executed.
    pub int_mul_ops: u64,
    /// Floating-point operations executed.
    pub fp_ops: u64,
    /// Branch unit operations executed.
    pub branch_ops: u64,

    // ---- stalls -------------------------------------------------------------
    /// Cycles during which the ROB was full with a long-latency load at its
    /// head (full-window stall cycles), in normal mode.
    pub full_window_stall_cycles: u64,
    /// Distinct full-window stalls observed.
    pub full_window_stalls: u64,
    /// Cycles the front-end delivered no micro-ops (fetch stalls).
    pub frontend_stall_cycles: u64,

    // ---- caches -------------------------------------------------------------
    /// L1 instruction-cache accesses / misses.
    pub l1i_accesses: u64,
    /// L1 instruction-cache misses.
    pub l1i_misses: u64,
    /// L1 data-cache accesses.
    pub l1d_accesses: u64,
    /// L1 data-cache misses.
    pub l1d_misses: u64,
    /// L2 accesses.
    pub l2_accesses: u64,
    /// L2 misses.
    pub l2_misses: u64,
    /// L3 accesses.
    pub l3_accesses: u64,
    /// L3 misses (DRAM accesses).
    pub l3_misses: u64,
    /// DRAM read requests.
    pub dram_reads: u64,
    /// DRAM write requests.
    pub dram_writes: u64,
    /// DRAM accesses that hit an open row buffer.
    pub dram_row_hits: u64,
    /// DRAM accesses that required activating a row.
    pub dram_row_misses: u64,

    // ---- runahead -----------------------------------------------------------
    /// Runahead invocations (entries into runahead mode).
    pub runahead_entries: u64,
    /// Runahead exits (should equal entries at the end of a run).
    pub runahead_exits: u64,
    /// Cycles spent in runahead mode.
    pub runahead_cycles: u64,
    /// Micro-ops speculatively executed in runahead mode.
    pub runahead_uops_executed: u64,
    /// Loads speculatively executed in runahead mode.
    pub runahead_loads_executed: u64,
    /// Runahead loads whose source operands were invalid (INV) and therefore
    /// could not prefetch.
    pub runahead_inv_loads: u64,
    /// Prefetch requests issued from runahead mode.
    pub runahead_prefetches_issued: u64,
    /// Runahead prefetches later referenced by a committed load (useful).
    pub runahead_prefetches_useful: u64,
    /// Entries skipped because the expected interval was too short.
    pub runahead_entries_skipped_short: u64,
    /// Entries skipped because a runahead period for the same load already
    /// ran (overlap avoidance).
    pub runahead_entries_skipped_overlap: u64,
    /// Cycles spent flushing + refilling the pipeline on runahead exit
    /// (traditional runahead and runahead buffer only).
    pub flush_refill_cycles: u64,
    /// Cycles in runahead mode during which the EMQ was full and runahead
    /// execution had to stall (PRE+EMQ only).
    pub emq_full_stall_cycles: u64,
    /// Histogram of runahead-interval lengths in cycles.
    pub runahead_interval_hist: Histogram,
    /// Fraction of issue-queue entries free at runahead entry.
    pub iq_free_at_entry: RunningAverage,
    /// Fraction of integer physical registers free at runahead entry.
    pub int_regs_free_at_entry: RunningAverage,
    /// Fraction of floating-point physical registers free at runahead entry.
    pub fp_regs_free_at_entry: RunningAverage,
    /// Percent of integer physical registers free, sampled at each distinct
    /// full-window stall (all techniques, before any eager reclamation).
    pub int_free_at_stall_hist: PercentHistogram,
    /// Percent of floating-point physical registers free at each distinct
    /// full-window stall.
    pub fp_free_at_stall_hist: PercentHistogram,
    /// Runahead entries refused because the free-register entry gate
    /// (`min_free_int_regs`/`min_free_fp_regs`) was not met.
    pub runahead_entries_skipped_no_regs: u64,

    // ---- PRE structures ------------------------------------------------------
    /// SST lookups.
    pub sst_lookups: u64,
    /// SST hits.
    pub sst_hits: u64,
    /// SST insertions.
    pub sst_inserts: u64,
    /// SST evictions due to capacity.
    pub sst_evictions: u64,
    /// PRDQ entry allocations by runahead renaming.
    pub prdq_allocations: u64,
    /// Physical registers reclaimed through the PRDQ in runahead mode.
    pub prdq_reclaims: u64,
    /// Dead previous mappings of the stalled window seeded into the PRDQ by
    /// the eager drain (at runahead entry and at later issue boundaries).
    pub prdq_eager_seeds: u64,
    /// Registers freed by draining eager-seeded PRDQ entries.
    pub prdq_eager_reclaims: u64,
    /// EMQ writes (micro-ops buffered in runahead mode).
    pub emq_writes: u64,
    /// EMQ reads (micro-ops dispatched from the EMQ after exit).
    pub emq_reads: u64,
    /// Runahead-buffer backward dataflow walks (CAM searches in the ROB/SQ).
    pub runahead_buffer_walks: u64,
    /// Micro-ops replayed from the runahead buffer.
    pub runahead_buffer_replays: u64,

    // ---- store checksum (architectural correctness) --------------------------
    /// Order-sensitive checksum of committed stores (compare against the
    /// reference interpreter).
    pub store_checksum: u64,

    // ---- termination ---------------------------------------------------------
    /// How the run ended (completed / max-cycles cap / watchdog abort).
    pub terminated: TerminationKind,
}

impl SimStats {
    /// Creates an empty statistics block.
    pub fn new() -> Self {
        SimStats::default()
    }

    /// Committed instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed_uops as f64 / self.cycles as f64
        }
    }

    /// Last-level-cache misses per kilo committed instructions.
    pub fn l3_mpki(&self) -> f64 {
        if self.committed_uops == 0 {
            0.0
        } else {
            self.l3_misses as f64 * 1000.0 / self.committed_uops as f64
        }
    }

    /// L1D misses per kilo committed instructions.
    pub fn l1d_mpki(&self) -> f64 {
        if self.committed_uops == 0 {
            0.0
        } else {
            self.l1d_misses as f64 * 1000.0 / self.committed_uops as f64
        }
    }

    /// Conditional-branch misprediction rate.
    pub fn branch_mpki(&self) -> f64 {
        if self.committed_uops == 0 {
            0.0
        } else {
            self.mispredicted_branches as f64 * 1000.0 / self.committed_uops as f64
        }
    }

    /// Fraction of cycles spent in full-window stalls.
    pub fn stall_fraction(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.full_window_stall_cycles as f64 / self.cycles as f64
        }
    }

    /// Fraction of cycles spent in runahead mode.
    pub fn runahead_fraction(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.runahead_cycles as f64 / self.cycles as f64
        }
    }

    /// SST hit rate over lookups.
    pub fn sst_hit_rate(&self) -> f64 {
        if self.sst_lookups == 0 {
            0.0
        } else {
            self.sst_hits as f64 / self.sst_lookups as f64
        }
    }

    /// Useful-prefetch fraction of issued runahead prefetches.
    pub fn prefetch_accuracy(&self) -> f64 {
        if self.runahead_prefetches_issued == 0 {
            0.0
        } else {
            self.runahead_prefetches_useful as f64 / self.runahead_prefetches_issued as f64
        }
    }

    /// Average runahead-interval length in cycles.
    pub fn mean_runahead_interval(&self) -> f64 {
        self.runahead_interval_hist.mean()
    }

    /// Normal-mode cycles the scheduler actually ticked one by one (total
    /// normal-mode cycles minus the bulk fast-forwarded ones).
    pub fn normal_cycles_simulated(&self) -> u64 {
        self.cycles
            .saturating_sub(self.runahead_cycles)
            .saturating_sub(self.ff_cycles.normal)
    }

    /// Runahead-mode cycles the scheduler actually ticked one by one.
    pub fn runahead_cycles_simulated(&self) -> u64 {
        self.runahead_cycles.saturating_sub(self.ff_cycles.runahead)
    }

    /// Fraction of all simulated cycles covered by the quiescent
    /// fast-forward (0 when the run had no cycles).
    pub fn ff_fraction(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            (self.ff_cycles.normal + self.ff_cycles.runahead) as f64 / self.cycles as f64
        }
    }
}

/// Every plain `u64` counter of [`SimStats`], listed once; the kv
/// serialization below derives both directions from this list so a new
/// counter only has to be added here (forgetting it entirely still fails the
/// roundtrip test).
macro_rules! with_u64_stats_fields {
    ($mac:ident) => {
        $mac!(
            cycles,
            committed_uops,
            committed_loads,
            committed_stores,
            committed_branches,
            mispredicted_branches,
            fetched_uops,
            decoded_uops,
            renamed_uops,
            dispatched_uops,
            issued_uops,
            executed_uops,
            squashed_uops,
            rat_reads,
            rat_writes,
            prf_reads,
            prf_writes,
            iq_writes,
            iq_wakeups,
            rob_writes,
            rob_reads,
            lsq_searches,
            lsq_forwards,
            forward_blocked_partial,
            int_alu_ops,
            int_mul_ops,
            fp_ops,
            branch_ops,
            full_window_stall_cycles,
            full_window_stalls,
            frontend_stall_cycles,
            l1i_accesses,
            l1i_misses,
            l1d_accesses,
            l1d_misses,
            l2_accesses,
            l2_misses,
            l3_accesses,
            l3_misses,
            dram_reads,
            dram_writes,
            dram_row_hits,
            dram_row_misses,
            runahead_entries,
            runahead_exits,
            runahead_cycles,
            runahead_uops_executed,
            runahead_loads_executed,
            runahead_inv_loads,
            runahead_prefetches_issued,
            runahead_prefetches_useful,
            runahead_entries_skipped_short,
            runahead_entries_skipped_overlap,
            flush_refill_cycles,
            emq_full_stall_cycles,
            runahead_entries_skipped_no_regs,
            sst_lookups,
            sst_hits,
            sst_inserts,
            sst_evictions,
            prdq_allocations,
            prdq_reclaims,
            prdq_eager_seeds,
            prdq_eager_reclaims,
            emq_writes,
            emq_reads,
            runahead_buffer_walks,
            runahead_buffer_replays,
            store_checksum,
        )
    };
}

fn parse_kv_u64(name: &str, value: &str) -> Result<u64, String> {
    value
        .parse::<u64>()
        .map_err(|_| format!("bad u64 for `{name}`: {value}"))
}

fn parse_kv_u64_list(name: &str, value: &str) -> Result<Vec<u64>, String> {
    if value.is_empty() {
        return Ok(Vec::new());
    }
    value
        .split(',')
        .map(|v| v.parse::<u64>())
        .collect::<Result<_, _>>()
        .map_err(|_| format!("bad u64 list for `{name}`: {value}"))
}

fn write_kv_u64_list(out: &mut String, name: &str, values: &[u64]) {
    let _ = write!(out, "{name} ");
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{v}");
    }
    out.push('\n');
}

impl Histogram {
    /// Writes the histogram as `prefix.field value` lines.
    fn write_kv(&self, out: &mut String, prefix: &str) {
        write_kv_u64_list(out, &format!("{prefix}.bounds"), &self.bounds);
        write_kv_u64_list(out, &format!("{prefix}.counts"), &self.counts);
        let _ = writeln!(out, "{prefix}.total {}", self.total);
        let _ = writeln!(out, "{prefix}.sum {}", self.sum);
        let _ = writeln!(out, "{prefix}.max {}", self.max);
    }

    /// Applies one `field value` pair produced by [`Histogram::write_kv`];
    /// returns `false` when `field` is not a histogram field.
    fn apply_kv(&mut self, field: &str, value: &str) -> Result<bool, String> {
        match field {
            "bounds" => self.bounds = parse_kv_u64_list(field, value)?,
            "counts" => self.counts = parse_kv_u64_list(field, value)?,
            "total" => self.total = parse_kv_u64(field, value)?,
            "sum" => self.sum = parse_kv_u64(field, value)?,
            "max" => self.max = parse_kv_u64(field, value)?,
            _ => return Ok(false),
        }
        Ok(true)
    }
}

impl RunningAverage {
    /// Writes the average as `prefix.field value` lines. The `f64` sum is
    /// written as raw IEEE-754 bits so the roundtrip is exact.
    fn write_kv(&self, out: &mut String, prefix: &str) {
        let _ = writeln!(out, "{prefix}.sum_bits {:016x}", self.sum.to_bits());
        let _ = writeln!(out, "{prefix}.samples {}", self.samples);
    }

    /// Applies one `field value` pair produced by [`RunningAverage::write_kv`].
    fn apply_kv(&mut self, field: &str, value: &str) -> Result<bool, String> {
        match field {
            "sum_bits" => {
                let bits = u64::from_str_radix(value, 16)
                    .map_err(|_| format!("bad f64 bits for `{field}`: {value}"))?;
                self.sum = f64::from_bits(bits);
            }
            "samples" => self.samples = parse_kv_u64(field, value)?,
            _ => return Ok(false),
        }
        Ok(true)
    }
}

impl SimStats {
    /// Serializes every field (including the histograms, running averages
    /// and fast-forward accounting) as `name value` lines. The counterpart
    /// of [`SimStats::from_kv`]; the roundtrip is exact, which is what lets
    /// the on-disk result cache return bit-identical statistics.
    pub fn to_kv(&self) -> String {
        let mut out = String::new();
        macro_rules! emit {
            ($($field:ident),* $(,)?) => {
                $( let _ = writeln!(out, concat!(stringify!($field), " {}"), self.$field); )*
            };
        }
        with_u64_stats_fields!(emit);
        let _ = writeln!(out, "terminated {}", self.terminated.as_str());
        let _ = writeln!(out, "ff_cycles.normal {}", self.ff_cycles.normal);
        let _ = writeln!(out, "ff_cycles.runahead {}", self.ff_cycles.runahead);
        self.runahead_interval_hist
            .write_kv(&mut out, "runahead_interval_hist");
        self.iq_free_at_entry.write_kv(&mut out, "iq_free_at_entry");
        self.int_regs_free_at_entry
            .write_kv(&mut out, "int_regs_free_at_entry");
        self.fp_regs_free_at_entry
            .write_kv(&mut out, "fp_regs_free_at_entry");
        self.int_free_at_stall_hist
            .0
            .write_kv(&mut out, "int_free_at_stall_hist");
        self.fp_free_at_stall_hist
            .0
            .write_kv(&mut out, "fp_free_at_stall_hist");
        out
    }

    /// Parses the `name value` lines written by [`SimStats::to_kv`].
    /// Unknown names are an error (they indicate a version mismatch, and a
    /// stale cache entry must not half-apply).
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed or unknown line.
    pub fn from_kv(text: &str) -> Result<SimStats, String> {
        let mut stats = SimStats::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let (name, value) = line
                .split_once(' ')
                .ok_or_else(|| format!("malformed stats line: {line}"))?;
            macro_rules! assign {
                ($($field:ident),* $(,)?) => {
                    match name {
                        $( stringify!($field) => {
                            stats.$field = parse_kv_u64(name, value)?;
                            continue;
                        } )*
                        _ => {}
                    }
                };
            }
            with_u64_stats_fields!(assign);
            if name == "terminated" {
                stats.terminated = TerminationKind::parse(value)?;
                continue;
            }
            let applied = match name.split_once('.') {
                Some(("ff_cycles", "normal")) => {
                    stats.ff_cycles.normal = parse_kv_u64(name, value)?;
                    true
                }
                Some(("ff_cycles", "runahead")) => {
                    stats.ff_cycles.runahead = parse_kv_u64(name, value)?;
                    true
                }
                Some(("runahead_interval_hist", field)) => {
                    stats.runahead_interval_hist.apply_kv(field, value)?
                }
                Some(("iq_free_at_entry", field)) => {
                    stats.iq_free_at_entry.apply_kv(field, value)?
                }
                Some(("int_regs_free_at_entry", field)) => {
                    stats.int_regs_free_at_entry.apply_kv(field, value)?
                }
                Some(("fp_regs_free_at_entry", field)) => {
                    stats.fp_regs_free_at_entry.apply_kv(field, value)?
                }
                Some(("int_free_at_stall_hist", field)) => {
                    stats.int_free_at_stall_hist.0.apply_kv(field, value)?
                }
                Some(("fp_free_at_stall_hist", field)) => {
                    stats.fp_free_at_stall_hist.0.apply_kv(field, value)?
                }
                _ => false,
            };
            if !applied {
                return Err(format!("unknown stats field `{name}`"));
            }
        }
        Ok(stats)
    }

    /// Folds `weight` copies of `other` into this block: every `u64` counter
    /// adds `weight × other` (wrapping, so checksum-style fields stay
    /// well-defined), histograms and running averages merge with the same
    /// weight, and the termination kind keeps the most severe value seen.
    ///
    /// This is the weighted extrapolation primitive for sampled simulation:
    /// summing each representative interval's stats scaled by its cluster
    /// weight yields an estimated full-run stats block whose integer
    /// counters are exact functions of the per-interval runs.
    pub fn merge_scaled(&mut self, other: &SimStats, weight: u64) {
        macro_rules! fold {
            ($($field:ident),* $(,)?) => {
                $( self.$field = self
                    .$field
                    .wrapping_add(other.$field.wrapping_mul(weight)); )*
            };
        }
        with_u64_stats_fields!(fold);
        self.ff_cycles.normal = self
            .ff_cycles
            .normal
            .wrapping_add(other.ff_cycles.normal.wrapping_mul(weight));
        self.ff_cycles.runahead = self
            .ff_cycles
            .runahead
            .wrapping_add(other.ff_cycles.runahead.wrapping_mul(weight));
        self.runahead_interval_hist
            .merge_scaled(&other.runahead_interval_hist, weight);
        self.iq_free_at_entry
            .merge_scaled(&other.iq_free_at_entry, weight);
        self.int_regs_free_at_entry
            .merge_scaled(&other.int_regs_free_at_entry, weight);
        self.fp_regs_free_at_entry
            .merge_scaled(&other.fp_regs_free_at_entry, weight);
        self.int_free_at_stall_hist
            .merge_scaled(&other.int_free_at_stall_hist, weight);
        self.fp_free_at_stall_hist
            .merge_scaled(&other.fp_free_at_stall_hist, weight);
        self.terminated = self.terminated.worst(other.terminated);
    }
}

impl fmt::Display for SimStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "cycles               : {}", self.cycles)?;
        writeln!(f, "committed uops       : {}", self.committed_uops)?;
        writeln!(f, "ipc                  : {:.3}", self.ipc())?;
        writeln!(f, "l1d mpki             : {:.2}", self.l1d_mpki())?;
        writeln!(f, "l3 mpki              : {:.2}", self.l3_mpki())?;
        writeln!(f, "branch mpki          : {:.2}", self.branch_mpki())?;
        writeln!(f, "full-window stalls   : {}", self.full_window_stalls)?;
        writeln!(f, "stall cycle fraction : {:.3}", self.stall_fraction())?;
        writeln!(f, "runahead entries     : {}", self.runahead_entries)?;
        writeln!(f, "runahead cycles      : {}", self.runahead_cycles)?;
        writeln!(
            f,
            "runahead prefetches  : {}",
            self.runahead_prefetches_issued
        )?;
        writeln!(f, "prefetch accuracy    : {:.3}", self.prefetch_accuracy())?;
        write!(f, "sst hit rate         : {:.3}", self.sst_hit_rate())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_records_and_buckets() {
        let mut h = Histogram::new(&[10, 20, 50]);
        for v in [5, 15, 15, 30, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.max(), 100);
        assert!((h.mean() - 33.0).abs() < 1e-9);
        assert!((h.fraction_below(20) - 3.0 / 5.0).abs() < 1e-9);
        assert!((h.fraction_below(10) - 1.0 / 5.0).abs() < 1e-9);
        let buckets: Vec<_> = h.buckets().collect();
        assert_eq!(buckets.len(), 4);
        assert_eq!(buckets[0], (10, 1));
        assert_eq!(buckets[3], (u64::MAX, 1));
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn histogram_rejects_unsorted_bounds() {
        let _ = Histogram::new(&[10, 5]);
    }

    #[test]
    fn histogram_empty_fractions_are_zero() {
        let h = Histogram::runahead_intervals();
        assert_eq!(h.fraction_below(20), 0.0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn running_average() {
        let mut avg = RunningAverage::default();
        assert_eq!(avg.mean(), 0.0);
        avg.record(0.25);
        avg.record(0.75);
        assert!((avg.mean() - 0.5).abs() < 1e-12);
        assert_eq!(avg.samples(), 2);
    }

    #[test]
    fn derived_metrics() {
        let mut s = SimStats::new();
        s.cycles = 1000;
        s.committed_uops = 2000;
        s.l3_misses = 20;
        s.l1d_misses = 100;
        s.mispredicted_branches = 4;
        s.full_window_stall_cycles = 250;
        s.runahead_cycles = 100;
        s.sst_lookups = 10;
        s.sst_hits = 9;
        s.runahead_prefetches_issued = 50;
        s.runahead_prefetches_useful = 40;
        assert!((s.ipc() - 2.0).abs() < 1e-12);
        assert!((s.l3_mpki() - 10.0).abs() < 1e-12);
        assert!((s.l1d_mpki() - 50.0).abs() < 1e-12);
        assert!((s.branch_mpki() - 2.0).abs() < 1e-12);
        assert!((s.stall_fraction() - 0.25).abs() < 1e-12);
        assert!((s.runahead_fraction() - 0.1).abs() < 1e-12);
        assert!((s.sst_hit_rate() - 0.9).abs() < 1e-12);
        assert!((s.prefetch_accuracy() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn zero_division_is_safe() {
        let s = SimStats::new();
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.l3_mpki(), 0.0);
        assert_eq!(s.prefetch_accuracy(), 0.0);
        assert_eq!(s.sst_hit_rate(), 0.0);
    }

    #[test]
    fn percent_histogram_clamps_and_buckets() {
        let mut h = PercentHistogram::new();
        h.record(0);
        h.record(3);
        h.record(250); // clamped to 100
        h.record_fraction(0.51);
        assert_eq!(h.count(), 4);
        assert!((h.fraction_below(1) - 0.25).abs() < 1e-9);
        assert!((h.fraction_below(5) - 0.5).abs() < 1e-9);
        assert!(h.mean() <= 100.0);
    }

    #[test]
    fn ff_cycles_never_break_equality() {
        let mut a = SimStats::new();
        let mut b = SimStats::new();
        a.cycles = 1000;
        b.cycles = 1000;
        a.ff_cycles.normal = 700;
        a.ff_cycles.runahead = 100;
        assert_eq!(a, b, "fast-forward accounting must not affect equality");
    }

    #[test]
    fn per_mode_cycle_split_is_consistent() {
        let mut s = SimStats::new();
        s.cycles = 1000;
        s.runahead_cycles = 400;
        s.ff_cycles.normal = 500;
        s.ff_cycles.runahead = 150;
        assert_eq!(s.normal_cycles_simulated(), 100);
        assert_eq!(s.runahead_cycles_simulated(), 250);
        assert!((s.ff_fraction() - 0.65).abs() < 1e-12);
        assert_eq!(
            s.normal_cycles_simulated()
                + s.runahead_cycles_simulated()
                + s.ff_cycles.normal
                + s.ff_cycles.runahead,
            s.cycles,
            "four-way split covers every cycle"
        );
    }

    #[test]
    fn kv_roundtrip_is_exact() {
        let mut s = SimStats::new();
        // Give every u64 counter a distinct value so a field dropped from
        // either direction of the kv serialization fails the comparison.
        let mut next = 1u64;
        macro_rules! fill {
            ($($field:ident),* $(,)?) => {
                $( s.$field = next; next += 7; )*
            };
        }
        with_u64_stats_fields!(fill);
        s.terminated = TerminationKind::Watchdog;
        s.ff_cycles.normal = next;
        s.ff_cycles.runahead = next + 1;
        s.runahead_interval_hist.record(15);
        s.runahead_interval_hist.record(480);
        s.iq_free_at_entry.record(0.37);
        s.int_regs_free_at_entry.record(0.5121);
        s.fp_regs_free_at_entry.record(0.999);
        s.int_free_at_stall_hist.record(3);
        s.fp_free_at_stall_hist.record(97);
        let kv = s.to_kv();
        let back = SimStats::from_kv(&kv).expect("parses");
        assert_eq!(back, s);
        // `PartialEq` ignores ff_cycles by design; the serialized text must
        // not, so compare it too for full bit-exactness.
        assert_eq!(back.to_kv(), kv);
        assert_eq!(back.ff_cycles.normal, s.ff_cycles.normal);
        assert_eq!(back.ff_cycles.runahead, s.ff_cycles.runahead);
        assert_eq!(back.mean_runahead_interval(), s.mean_runahead_interval());
        assert_eq!(back.iq_free_at_entry.mean(), s.iq_free_at_entry.mean());
    }

    #[test]
    fn termination_kind_roundtrips_and_affects_equality() {
        for kind in [
            TerminationKind::Completed,
            TerminationKind::MaxCycles,
            TerminationKind::Watchdog,
        ] {
            assert_eq!(TerminationKind::parse(kind.as_str()).unwrap(), kind);
        }
        assert!(TerminationKind::parse("exploded").is_err());
        assert!(SimStats::from_kv("terminated exploded").is_err());

        let mut a = SimStats::new();
        let b = SimStats::new();
        a.terminated = TerminationKind::Watchdog;
        assert_ne!(a, b, "termination kind is a real, comparable statistic");
    }

    #[test]
    fn kv_rejects_unknown_and_malformed_fields() {
        assert!(SimStats::from_kv("not_a_field 3").is_err());
        assert!(SimStats::from_kv("cycles abc").is_err());
        assert!(SimStats::from_kv("cycles").is_err());
        // Empty input is a valid (default) stats block.
        assert_eq!(SimStats::from_kv("").unwrap(), SimStats::new());
    }

    #[test]
    fn merge_scaled_scales_every_counter_exactly() {
        let mut sample = SimStats::new();
        // Distinct value per counter so a field skipped by the fold macro
        // shows up as a mismatch.
        let mut next = 1u64;
        macro_rules! fill {
            ($($field:ident),* $(,)?) => {
                $( sample.$field = next; next += 3; )*
            };
        }
        with_u64_stats_fields!(fill);
        sample.runahead_interval_hist.record(30);
        sample.iq_free_at_entry.record(0.5);
        sample.int_free_at_stall_hist.record(40);
        sample.terminated = TerminationKind::MaxCycles;

        let mut total = SimStats::new();
        total.merge_scaled(&sample, 3);
        total.merge_scaled(&sample, 2);

        let mut expect = 1u64;
        macro_rules! check {
            ($($field:ident),* $(,)?) => {
                $( assert_eq!(total.$field, expect * 5, stringify!($field));
                   expect += 3; )*
            };
        }
        with_u64_stats_fields!(check);
        assert_eq!(total.runahead_interval_hist.count(), 5);
        assert_eq!(total.iq_free_at_entry.samples(), 5);
        assert!((total.iq_free_at_entry.mean() - 0.5).abs() < 1e-12);
        assert_eq!(total.int_free_at_stall_hist.count(), 5);
        assert_eq!(total.terminated, TerminationKind::MaxCycles);
        // IPC of the merged block is the weighted ratio, not a mean of
        // per-slice IPCs.
        assert!((total.ipc() - sample.ipc()).abs() < 1e-12);
    }

    #[test]
    fn termination_worst_orders_severity() {
        use TerminationKind::*;
        assert_eq!(Completed.worst(MaxCycles), MaxCycles);
        assert_eq!(Watchdog.worst(MaxCycles), Watchdog);
        assert_eq!(MaxCycles.worst(Completed), MaxCycles);
        assert_eq!(Completed.worst(Completed), Completed);
    }

    #[test]
    fn display_mentions_key_metrics() {
        let s = SimStats::new();
        let text = s.to_string();
        assert!(text.contains("ipc"));
        assert!(text.contains("runahead entries"));
    }
}
