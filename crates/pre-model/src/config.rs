//! Simulator configuration.
//!
//! [`SimConfig::haswell_like`] reproduces Table 1 of the paper: a 2.66 GHz
//! 4-wide out-of-order core with a 192-entry ROB, 92-entry issue queue,
//! 64-entry load and store queues, 168 + 168 physical registers, an 8-stage
//! front-end, a 32 KB L1I / 32 KB L1D / 256 KB L2 / 1 MB L3 cache hierarchy
//! and DDR3-1600 memory, plus the PRE structures (256-entry SST, 192-entry
//! PRDQ, 768-entry EMQ).

use crate::error::ConfigError;
use crate::isa::OpClass;

/// Execution-latency table, in core cycles, for non-memory operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyConfig {
    /// Single-cycle integer ALU latency.
    pub int_alu: u64,
    /// Integer multiply latency.
    pub int_mul: u64,
    /// Floating-point add latency.
    pub fp_alu: u64,
    /// Floating-point multiply latency.
    pub fp_mul: u64,
    /// Floating-point divide latency.
    pub fp_div: u64,
    /// Branch resolution latency in the execution stage.
    pub branch: u64,
    /// Store address/data latency (cache write happens at commit).
    pub store: u64,
}

impl Default for LatencyConfig {
    fn default() -> Self {
        LatencyConfig {
            int_alu: 1,
            int_mul: 3,
            fp_alu: 3,
            fp_mul: 5,
            fp_div: 20,
            branch: 1,
            store: 1,
        }
    }
}

impl LatencyConfig {
    /// Execution latency for an operation class. Load latency is determined
    /// by the memory hierarchy and is not part of this table (loads return
    /// the address-generation latency here).
    pub fn for_class(&self, class: OpClass) -> u64 {
        match class {
            OpClass::Nop => 1,
            OpClass::IntAlu => self.int_alu,
            OpClass::IntMul => self.int_mul,
            OpClass::FpAlu => self.fp_alu,
            OpClass::FpMul => self.fp_mul,
            OpClass::FpDiv => self.fp_div,
            OpClass::Load => 1,
            OpClass::Store => self.store,
            OpClass::Branch => self.branch,
        }
    }
}

/// Functional-unit counts (issue ports) per class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuConfig {
    /// Number of integer ALUs.
    pub int_alu: usize,
    /// Number of integer multipliers.
    pub int_mul: usize,
    /// Number of floating-point units (shared add/mul/div pipes).
    pub fp: usize,
    /// Number of load ports.
    pub load_ports: usize,
    /// Number of store ports.
    pub store_ports: usize,
    /// Number of branch units.
    pub branch: usize,
}

impl Default for FuConfig {
    fn default() -> Self {
        // Haswell-like: 4 integer ALUs, 1 multiplier pipe, 2 FP pipes,
        // 2 load ports, 1 store port, 2 branch-capable ports.
        FuConfig {
            int_alu: 4,
            int_mul: 1,
            fp: 2,
            load_ports: 2,
            store_ports: 1,
            branch: 2,
        }
    }
}

impl FuConfig {
    /// Number of units available for an operation class.
    pub fn ports_for(&self, class: OpClass) -> usize {
        match class {
            OpClass::Nop | OpClass::IntAlu => self.int_alu,
            OpClass::IntMul => self.int_mul,
            OpClass::FpAlu | OpClass::FpMul | OpClass::FpDiv => self.fp,
            OpClass::Load => self.load_ports,
            OpClass::Store => self.store_ports,
            OpClass::Branch => self.branch,
        }
    }
}

/// Out-of-order core parameters (Table 1, first two rows).
#[derive(Debug, Clone, PartialEq)]
pub struct CoreConfig {
    /// Core clock frequency in GHz (2.66 in the paper).
    pub freq_ghz: f64,
    /// Reorder-buffer capacity (192).
    pub rob_entries: usize,
    /// Unified issue-queue capacity (92).
    pub iq_entries: usize,
    /// Load-queue capacity (64).
    pub lq_entries: usize,
    /// Store-queue capacity (64).
    pub sq_entries: usize,
    /// Maximum micro-ops the front-end delivers to rename per cycle (the
    /// paper assumes up to 8).
    pub fetch_width: usize,
    /// Dispatch (rename → ROB/IQ) width (4).
    pub dispatch_width: usize,
    /// Issue width (4).
    pub issue_width: usize,
    /// Commit width (4).
    pub commit_width: usize,
    /// Front-end depth in stages (8); determines the refill penalty after a
    /// pipeline flush.
    pub frontend_depth: usize,
    /// Integer physical register file size (168).
    pub int_phys_regs: usize,
    /// Floating-point physical register file size (168).
    pub fp_phys_regs: usize,
    /// Functional-unit pool.
    pub fu: FuConfig,
    /// Execution latencies.
    pub latencies: LatencyConfig,
    /// Escape hatch: use the reference (cycle-by-cycle, scan-based) issue
    /// scheduler instead of the event-driven wakeup/select scheduler with
    /// quiescent-cycle fast-forward. Both produce bit-identical statistics;
    /// the reference path exists for equivalence testing and debugging.
    pub reference_scheduler: bool,
}

impl Default for CoreConfig {
    fn default() -> Self {
        CoreConfig {
            freq_ghz: 2.66,
            rob_entries: 192,
            iq_entries: 92,
            lq_entries: 64,
            sq_entries: 64,
            fetch_width: 8,
            dispatch_width: 4,
            issue_width: 4,
            commit_width: 4,
            frontend_depth: 8,
            int_phys_regs: 168,
            fp_phys_regs: 168,
            fu: FuConfig::default(),
            latencies: LatencyConfig::default(),
            reference_scheduler: false,
        }
    }
}

/// A single cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Associativity (ways per set).
    pub assoc: usize,
    /// Cache-line size in bytes (64).
    pub line_bytes: usize,
    /// Access latency in core cycles (hit latency).
    pub latency: u64,
    /// Number of miss-status holding registers (outstanding misses).
    pub mshrs: usize,
}

impl CacheConfig {
    /// Convenience constructor from a size in kilobytes.
    pub fn kb(size_kb: usize, assoc: usize, latency: u64, mshrs: usize) -> Self {
        CacheConfig {
            size_bytes: size_kb * 1024,
            assoc,
            line_bytes: 64,
            latency,
            mshrs,
        }
    }

    /// Number of sets implied by the geometry.
    pub fn num_sets(&self) -> usize {
        self.size_bytes / (self.assoc * self.line_bytes)
    }

    /// Validates the geometry (size divisible by `assoc × line`, power-of-two
    /// set count).
    pub fn validate(&self, name: &'static str) -> Result<(), ConfigError> {
        if self.size_bytes == 0 || self.assoc == 0 || self.line_bytes == 0 {
            return Err(ConfigError::ZeroCapacity { field: name });
        }
        if self.size_bytes % (self.assoc * self.line_bytes) != 0 {
            return Err(ConfigError::BadCacheGeometry {
                cache: name,
                detail: format!(
                    "size {} not divisible by assoc {} x line {}",
                    self.size_bytes, self.assoc, self.line_bytes
                ),
            });
        }
        let sets = self.num_sets();
        if !sets.is_power_of_two() {
            return Err(ConfigError::NotPowerOfTwo {
                field: name,
                value: sets as u64,
            });
        }
        if self.mshrs == 0 {
            return Err(ConfigError::ZeroCapacity { field: name });
        }
        Ok(())
    }
}

/// DDR3-like main-memory timing (Table 1, last row).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramConfig {
    /// Memory bus frequency in MHz (800 for DDR3-1600).
    pub bus_mhz: f64,
    /// Number of ranks (4).
    pub ranks: usize,
    /// Total number of banks across all ranks (32).
    pub banks: usize,
    /// DRAM page (row-buffer) size in bytes (4 KB).
    pub page_bytes: usize,
    /// Data-bus width in bytes (8 = 64 bits).
    pub bus_bytes: usize,
    /// CAS latency in memory-bus cycles (11).
    pub t_cl: u64,
    /// RAS-to-CAS delay in memory-bus cycles (11).
    pub t_rcd: u64,
    /// Row-precharge time in memory-bus cycles (11).
    pub t_rp: u64,
    /// Burst length in bus transfers (8 transfers of 8 bytes = one 64 B line).
    pub burst_length: u64,
    /// Memory-controller overhead per request in memory-bus cycles: queue
    /// arbitration, scheduling, on-chip interconnect and I/O. Added to the
    /// completion time of every DRAM access; together with the array timing
    /// this puts an isolated LLC miss at "a couple hundred cycles", as the
    /// paper assumes.
    pub t_controller: u64,
}

impl Default for DramConfig {
    fn default() -> Self {
        DramConfig {
            bus_mhz: 800.0,
            ranks: 4,
            banks: 32,
            page_bytes: 4096,
            bus_bytes: 8,
            t_cl: 11,
            t_rcd: 11,
            t_rp: 11,
            burst_length: 8,
            t_controller: 40,
        }
    }
}

impl DramConfig {
    /// Converts memory-bus cycles into core cycles for a core running at
    /// `core_ghz`.
    pub fn bus_to_core_cycles(&self, core_ghz: f64, bus_cycles: u64) -> u64 {
        let ratio = (core_ghz * 1000.0) / self.bus_mhz;
        (bus_cycles as f64 * ratio).ceil() as u64
    }
}

/// Front-end branch-prediction parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrontendConfig {
    /// Number of branch-target-buffer entries.
    pub btb_entries: usize,
    /// gshare history/index width in bits (table has `2^bits` counters).
    pub gshare_bits: usize,
    /// Return-address-stack depth.
    pub ras_entries: usize,
}

impl Default for FrontendConfig {
    fn default() -> Self {
        FrontendConfig {
            btb_entries: 4096,
            gshare_bits: 14,
            ras_entries: 16,
        }
    }
}

/// Parameters of the runahead mechanisms (Sections 3.2–3.6 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunaheadConfig {
    /// Stalling Slice Table entries (256, fully associative, LRU).
    pub sst_entries: usize,
    /// Precise Register Deallocation Queue entries (192).
    pub prdq_entries: usize,
    /// Extended Micro-op Queue entries (768 = 4 × ROB).
    pub emq_entries: usize,
    /// Maximum dependence-chain length extracted by the runahead buffer (32
    /// micro-ops, as in Hashemi et al.).
    pub runahead_buffer_chain_max: usize,
    /// Traditional-runahead / runahead-buffer entry policy: do not enter
    /// runahead mode when the stalling load is expected to return within
    /// this many cycles (Mutlu et al. short-interval optimization).
    pub min_expected_runahead_cycles: u64,
    /// Whether runahead prefetches fill the L1 data cache (in addition to L2
    /// and L3).
    pub prefetch_fill_l1: bool,
    /// Number of SST read ports (8) — modelled for energy accounting.
    pub sst_read_ports: usize,
    /// Number of SST write ports (2).
    pub sst_write_ports: usize,
    /// PRE entry gate: refuse to enter runahead mode unless at least this
    /// many integer physical registers are free (counting registers the
    /// eager PRDQ drain can release at entry). Zero disables the gate.
    pub min_free_int_regs: usize,
    /// PRE entry gate for the floating-point register class. Zero disables
    /// the gate.
    pub min_free_fp_regs: usize,
}

impl Default for RunaheadConfig {
    fn default() -> Self {
        RunaheadConfig {
            sst_entries: 256,
            prdq_entries: 192,
            emq_entries: 768,
            runahead_buffer_chain_max: 32,
            min_expected_runahead_cycles: 20,
            prefetch_fill_l1: true,
            sst_read_ports: 8,
            sst_write_ports: 2,
            min_free_int_regs: 0,
            min_free_fp_regs: 0,
        }
    }
}

/// Complete simulator configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Core (back-end) parameters.
    pub core: CoreConfig,
    /// L1 instruction cache.
    pub l1i: CacheConfig,
    /// L1 data cache.
    pub l1d: CacheConfig,
    /// Private unified L2.
    pub l2: CacheConfig,
    /// Shared L3 (one core in this study).
    pub l3: CacheConfig,
    /// Main-memory timing.
    pub dram: DramConfig,
    /// Branch-prediction parameters.
    pub frontend: FrontendConfig,
    /// Runahead-mechanism parameters.
    pub runahead: RunaheadConfig,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig::haswell_like()
    }
}

impl SimConfig {
    /// The paper's Table 1 baseline configuration.
    pub fn haswell_like() -> Self {
        SimConfig {
            core: CoreConfig::default(),
            l1i: CacheConfig::kb(32, 4, 2, 8),
            l1d: CacheConfig::kb(32, 8, 4, 32),
            l2: CacheConfig::kb(256, 8, 8, 48),
            l3: CacheConfig::kb(1024, 16, 30, 64),
            dram: DramConfig::default(),
            frontend: FrontendConfig::default(),
            runahead: RunaheadConfig::default(),
        }
    }

    /// A scaled-down configuration useful for fast unit tests: same structure
    /// as [`SimConfig::haswell_like`] but with small caches so that LLC
    /// misses (and therefore runahead intervals) occur with tiny working
    /// sets.
    pub fn small_for_tests() -> Self {
        let mut cfg = SimConfig::haswell_like();
        cfg.l1i = CacheConfig::kb(4, 2, 2, 4);
        cfg.l1d = CacheConfig::kb(4, 4, 4, 8);
        cfg.l2 = CacheConfig::kb(16, 4, 8, 8);
        cfg.l3 = CacheConfig::kb(64, 8, 30, 16);
        cfg
    }

    /// Validates the whole configuration.
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] found: zero-sized structures,
    /// inconsistent cache geometry, physical register files too small to
    /// cover the architectural state, or unsupported widths.
    pub fn validate(&self) -> Result<(), ConfigError> {
        let c = &self.core;
        for (field, value) in [
            ("rob_entries", c.rob_entries),
            ("iq_entries", c.iq_entries),
            ("lq_entries", c.lq_entries),
            ("sq_entries", c.sq_entries),
            ("fetch_width", c.fetch_width),
            ("dispatch_width", c.dispatch_width),
            ("issue_width", c.issue_width),
            ("commit_width", c.commit_width),
            ("frontend_depth", c.frontend_depth),
        ] {
            if value == 0 {
                return Err(ConfigError::ZeroCapacity { field });
            }
        }
        for (field, value) in [
            ("fetch_width", c.fetch_width),
            ("dispatch_width", c.dispatch_width),
            ("issue_width", c.issue_width),
            ("commit_width", c.commit_width),
        ] {
            if value > 16 {
                return Err(ConfigError::WidthOutOfRange {
                    field,
                    value,
                    max: 16,
                });
            }
        }
        let min_int = crate::reg::NUM_INT_ARCH_REGS + c.dispatch_width;
        if c.int_phys_regs < min_int {
            return Err(ConfigError::TooFewPhysRegs {
                class: "integer",
                configured: c.int_phys_regs,
                required: min_int,
            });
        }
        let min_fp = crate::reg::NUM_FP_ARCH_REGS + c.dispatch_width;
        if c.fp_phys_regs < min_fp {
            return Err(ConfigError::TooFewPhysRegs {
                class: "floating-point",
                configured: c.fp_phys_regs,
                required: min_fp,
            });
        }
        self.l1i.validate("l1i")?;
        self.l1d.validate("l1d")?;
        self.l2.validate("l2")?;
        self.l3.validate("l3")?;
        if self.runahead.sst_entries == 0 {
            return Err(ConfigError::ZeroCapacity {
                field: "sst_entries",
            });
        }
        if self.runahead.prdq_entries == 0 {
            return Err(ConfigError::ZeroCapacity {
                field: "prdq_entries",
            });
        }
        if self.runahead.emq_entries == 0 {
            return Err(ConfigError::ZeroCapacity {
                field: "emq_entries",
            });
        }
        Ok(())
    }

    /// Round-trip DRAM access latency (closed page) in core cycles, the
    /// latency an isolated LLC miss observes: controller + tRP + tRCD + tCL +
    /// burst.
    pub fn dram_closed_page_latency(&self) -> u64 {
        let bus = self.dram.t_controller
            + self.dram.t_rp
            + self.dram.t_rcd
            + self.dram.t_cl
            + self.dram.burst_length / 2;
        self.dram.bus_to_core_cycles(self.core.freq_ghz, bus)
    }
}

/// Builder for [`SimConfig`] exposing the parameters that the paper's
/// experiments sweep.
///
/// # Example
///
/// ```
/// use pre_model::config::SimConfigBuilder;
///
/// let cfg = SimConfigBuilder::haswell_like()
///     .sst_entries(128)
///     .emq_entries(384)
///     .rob_entries(192)
///     .build()
///     .expect("valid configuration");
/// assert_eq!(cfg.runahead.sst_entries, 128);
/// ```
#[derive(Debug, Clone)]
pub struct SimConfigBuilder {
    cfg: SimConfig,
}

impl SimConfigBuilder {
    /// Starts from the paper's Table 1 baseline.
    pub fn haswell_like() -> Self {
        SimConfigBuilder {
            cfg: SimConfig::haswell_like(),
        }
    }

    /// Starts from the scaled-down test configuration.
    pub fn small_for_tests() -> Self {
        SimConfigBuilder {
            cfg: SimConfig::small_for_tests(),
        }
    }

    /// Sets the ROB capacity.
    pub fn rob_entries(mut self, n: usize) -> Self {
        self.cfg.core.rob_entries = n;
        self
    }

    /// Sets the issue-queue capacity.
    pub fn iq_entries(mut self, n: usize) -> Self {
        self.cfg.core.iq_entries = n;
        self
    }

    /// Sets the SST capacity.
    pub fn sst_entries(mut self, n: usize) -> Self {
        self.cfg.runahead.sst_entries = n;
        self
    }

    /// Sets the PRDQ capacity.
    pub fn prdq_entries(mut self, n: usize) -> Self {
        self.cfg.runahead.prdq_entries = n;
        self
    }

    /// Sets the EMQ capacity.
    pub fn emq_entries(mut self, n: usize) -> Self {
        self.cfg.runahead.emq_entries = n;
        self
    }

    /// Sets the L3 capacity in kilobytes (associativity and latency keep
    /// their current values).
    pub fn l3_kb(mut self, kb: usize) -> Self {
        self.cfg.l3.size_bytes = kb * 1024;
        self
    }

    /// Sets the minimum expected runahead interval under which traditional
    /// runahead refuses to enter runahead mode.
    pub fn min_expected_runahead_cycles(mut self, cycles: u64) -> Self {
        self.cfg.runahead.min_expected_runahead_cycles = cycles;
        self
    }

    /// Sets PRE's free-register entry gates: runahead mode is only entered
    /// when at least this many integer / floating-point registers are free
    /// (or can be released by the eager PRDQ drain). Zero disables a gate.
    pub fn min_free_regs(mut self, int_regs: usize, fp_regs: usize) -> Self {
        self.cfg.runahead.min_free_int_regs = int_regs;
        self.cfg.runahead.min_free_fp_regs = fp_regs;
        self
    }

    /// Selects the reference (scan-based, no fast-forward) issue scheduler
    /// instead of the event-driven one. Statistics are bit-identical either
    /// way; this is the `--reference-scheduler` escape hatch.
    pub fn reference_scheduler(mut self, on: bool) -> Self {
        self.cfg.core.reference_scheduler = on;
        self
    }

    /// Applies an arbitrary closure to the configuration under construction.
    pub fn tweak(mut self, f: impl FnOnce(&mut SimConfig)) -> Self {
        f(&mut self.cfg);
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if the assembled configuration is
    /// inconsistent (see [`SimConfig::validate`]).
    pub fn build(self) -> Result<SimConfig, ConfigError> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn haswell_like_matches_table1() {
        let cfg = SimConfig::haswell_like();
        assert_eq!(cfg.core.rob_entries, 192);
        assert_eq!(cfg.core.iq_entries, 92);
        assert_eq!(cfg.core.lq_entries, 64);
        assert_eq!(cfg.core.sq_entries, 64);
        assert_eq!(cfg.core.int_phys_regs, 168);
        assert_eq!(cfg.core.fp_phys_regs, 168);
        assert_eq!(cfg.core.frontend_depth, 8);
        assert_eq!(cfg.l1i.size_bytes, 32 * 1024);
        assert_eq!(cfg.l1d.size_bytes, 32 * 1024);
        assert_eq!(cfg.l2.size_bytes, 256 * 1024);
        assert_eq!(cfg.l3.size_bytes, 1024 * 1024);
        assert_eq!(cfg.runahead.sst_entries, 256);
        assert_eq!(cfg.runahead.prdq_entries, 192);
        assert_eq!(cfg.runahead.emq_entries, 768);
        cfg.validate().unwrap();
    }

    #[test]
    fn small_for_tests_is_valid() {
        SimConfig::small_for_tests().validate().unwrap();
    }

    #[test]
    fn cache_geometry_is_power_of_two_sets() {
        let cfg = SimConfig::haswell_like();
        assert_eq!(cfg.l1d.num_sets(), 64);
        assert_eq!(cfg.l3.num_sets(), 1024);
    }

    #[test]
    fn validate_rejects_zero_rob() {
        let mut cfg = SimConfig::haswell_like();
        cfg.core.rob_entries = 0;
        assert!(matches!(
            cfg.validate(),
            Err(ConfigError::ZeroCapacity { .. })
        ));
    }

    #[test]
    fn validate_rejects_tiny_prf() {
        let mut cfg = SimConfig::haswell_like();
        cfg.core.int_phys_regs = 16;
        assert!(matches!(
            cfg.validate(),
            Err(ConfigError::TooFewPhysRegs { .. })
        ));
    }

    #[test]
    fn validate_rejects_bad_cache_geometry() {
        let mut cfg = SimConfig::haswell_like();
        cfg.l1d.size_bytes = 3000;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn builder_overrides_fields() {
        let cfg = SimConfigBuilder::haswell_like()
            .sst_entries(64)
            .emq_entries(192)
            .rob_entries(256)
            .build()
            .unwrap();
        assert_eq!(cfg.runahead.sst_entries, 64);
        assert_eq!(cfg.runahead.emq_entries, 192);
        assert_eq!(cfg.core.rob_entries, 256);
    }

    #[test]
    fn free_reg_gates_default_off_and_are_buildable() {
        let cfg = SimConfig::haswell_like();
        assert_eq!(cfg.runahead.min_free_int_regs, 0);
        assert_eq!(cfg.runahead.min_free_fp_regs, 0);
        let gated = SimConfigBuilder::haswell_like()
            .min_free_regs(4, 2)
            .build()
            .unwrap();
        assert_eq!(gated.runahead.min_free_int_regs, 4);
        assert_eq!(gated.runahead.min_free_fp_regs, 2);
    }

    #[test]
    fn builder_propagates_validation_errors() {
        assert!(SimConfigBuilder::haswell_like()
            .rob_entries(0)
            .build()
            .is_err());
    }

    #[test]
    fn dram_latency_is_a_couple_hundred_cycles() {
        let cfg = SimConfig::haswell_like();
        let lat = cfg.dram_closed_page_latency();
        // ~37 bus cycles at 800 MHz with a 2.66 GHz core is ~120+ core cycles;
        // combined with L1+L2+L3 lookup latencies an isolated miss costs a
        // couple hundred cycles, as the paper states.
        assert!(lat > 80 && lat < 400, "unexpected DRAM latency {lat}");
    }

    #[test]
    fn latency_table_covers_all_classes() {
        let lat = LatencyConfig::default();
        for class in OpClass::ALL {
            assert!(lat.for_class(class) >= 1);
        }
    }

    #[test]
    fn fu_ports_cover_all_classes() {
        let fu = FuConfig::default();
        for class in OpClass::ALL {
            assert!(fu.ports_for(class) >= 1);
        }
    }
}
