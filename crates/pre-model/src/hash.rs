//! Stable, process-independent hashing for cache keys.
//!
//! The result cache and the snapshot stores key their entries by a hash of
//! the run specification (configuration, technique, workload, parameters,
//! budget). `std::hash` is randomized per process, so the keys here use a
//! fixed FNV-1a over an explicit byte stream instead: the same inputs hash
//! to the same 64-bit key in every process, which is what lets the on-disk
//! result cache (`PRE_CACHE_DIR`) survive across invocations.
//!
//! Collisions are handled one level up: every cache entry stores the full
//! key-description string alongside the hash and verifies it on lookup, so
//! a 64-bit collision degrades to a cache miss, never to a wrong answer.

use std::fmt;

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A deterministic 64-bit FNV-1a hasher.
///
/// # Example
///
/// ```
/// use pre_model::hash::StableHasher;
///
/// let mut a = StableHasher::new();
/// a.write_str("lbm-like");
/// a.write_u64(300_000);
/// let mut b = StableHasher::new();
/// b.write_str("lbm-like");
/// b.write_u64(300_000);
/// assert_eq!(a.finish(), b.finish());
/// ```
#[derive(Debug, Clone, Copy)]
pub struct StableHasher {
    state: u64,
}

impl Default for StableHasher {
    fn default() -> Self {
        StableHasher::new()
    }
}

impl StableHasher {
    /// Creates a hasher at the FNV-1a offset basis.
    pub fn new() -> Self {
        StableHasher { state: FNV_OFFSET }
    }

    /// Feeds raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Feeds a string (bytes plus a length terminator, so `"ab" + "c"` and
    /// `"a" + "bc"` hash differently).
    pub fn write_str(&mut self, s: &str) {
        self.write_bytes(s.as_bytes());
        self.write_u64(s.len() as u64);
    }

    /// Feeds one `u64` (little-endian bytes).
    pub fn write_u64(&mut self, value: u64) {
        self.write_bytes(&value.to_le_bytes());
    }

    /// The accumulated 64-bit hash.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// Hashes a value's `Debug` representation. The configuration types are
/// plain structs of scalars whose `Debug` output is a pure function of their
/// contents, which makes this a convenient exhaustive content hash: a new
/// configuration field automatically enters the key (invalidating stale
/// cache entries) without anyone having to remember to add it.
pub fn stable_hash_of_debug<T: fmt::Debug>(value: &T) -> u64 {
    let mut h = StableHasher::new();
    h.write_str(&format!("{value:?}"));
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_fnv1a_vectors() {
        // FNV-1a("") is the offset basis; FNV-1a("a") is the classic vector.
        assert_eq!(StableHasher::new().finish(), 0xcbf2_9ce4_8422_2325);
        let mut h = StableHasher::new();
        h.write_bytes(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn string_framing_disambiguates_concatenations() {
        let mut a = StableHasher::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = StableHasher::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn debug_hash_is_content_sensitive() {
        let base = crate::config::SimConfig::haswell_like();
        let mut tweaked = base.clone();
        tweaked.runahead.sst_entries = 128;
        assert_eq!(stable_hash_of_debug(&base), stable_hash_of_debug(&base));
        assert_ne!(stable_hash_of_debug(&base), stable_hash_of_debug(&tweaked));
    }
}
