//! Static programs and the in-order reference interpreter.
//!
//! A [`Program`] is an array of [`StaticInst`]s (the PC of an instruction is
//! its index) plus an initial memory image and initial register values.
//! Workload generators in `pre-workloads` build programs; the out-of-order
//! core executes them cycle by cycle; the [`Interpreter`] here executes them
//! functionally in order and serves as the golden model in tests — the
//! architectural state produced by the out-of-order core (with or without
//! runahead) after *N* committed instructions must match the interpreter
//! after *N* steps.

use crate::error::ProgramError;
use crate::isa::StaticInst;
use crate::mem::FuncMem;
use crate::reg::{ArchReg, NUM_ARCH_REGS};
use crate::snapshot::WarmTrace;

/// A static program for the synthetic ISA.
#[derive(Debug, Default)]
pub struct Program {
    /// Human-readable workload name (e.g. `"mcf-like"`).
    pub name: String,
    /// The instructions; the PC of `insts[i]` is `i`.
    pub insts: Vec<StaticInst>,
    /// Entry PC.
    pub entry: u32,
    /// Initial memory image as `(byte address, 8-byte value)` pairs.
    pub initial_mem: Vec<(u64, u64)>,
    /// Byte-granular initial memory image as `(byte address, byte)` pairs
    /// (`.byte`/`.half` assembler data), applied after `initial_mem`.
    pub initial_mem_bytes: Vec<(u64, u8)>,
    /// Initial architectural register values.
    pub initial_regs: Vec<(ArchReg, u64)>,
    /// Memoized [`Program::content_hash`]. Multi-megabyte images make the
    /// hash a per-call millisecond cost, and the cache/snapshot stores ask
    /// for it on every lookup — so it is computed once per instance. A
    /// program must not be mutated after its first `content_hash` call;
    /// cloning resets the memo, so the build-by-mutating-a-clone producers
    /// (assembler, workload builders) stay correct.
    hash_memo: std::sync::OnceLock<u64>,
}

impl Clone for Program {
    fn clone(&self) -> Self {
        Program {
            name: self.name.clone(),
            insts: self.insts.clone(),
            entry: self.entry,
            initial_mem: self.initial_mem.clone(),
            initial_mem_bytes: self.initial_mem_bytes.clone(),
            initial_regs: self.initial_regs.clone(),
            // Clones are what producers mutate; never inherit the memo.
            hash_memo: std::sync::OnceLock::new(),
        }
    }
}

impl PartialEq for Program {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
            && self.insts == other.insts
            && self.entry == other.entry
            && self.initial_mem == other.initial_mem
            && self.initial_mem_bytes == other.initial_mem_bytes
            && self.initial_regs == other.initial_regs
    }
}

impl Eq for Program {}

impl Program {
    /// Creates an empty program with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Program {
            name: name.into(),
            ..Program::default()
        }
    }

    /// Number of static instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// `true` if the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// The instruction at `pc`, or `None` when `pc` is outside the program.
    pub fn inst_at(&self, pc: u32) -> Option<&StaticInst> {
        self.insts.get(pc as usize)
    }

    /// Validates structural well-formedness of the program.
    ///
    /// # Errors
    ///
    /// Returns a [`ProgramError`] when the program is empty, the entry point
    /// or any branch target is out of range, or an instruction's operands are
    /// inconsistent with its opcode.
    pub fn validate(&self) -> Result<(), ProgramError> {
        if self.insts.is_empty() {
            return Err(ProgramError::Empty);
        }
        if self.entry as usize >= self.insts.len() {
            return Err(ProgramError::EntryOutOfRange {
                entry: self.entry,
                len: self.insts.len(),
            });
        }
        for (pc, inst) in self.insts.iter().enumerate() {
            let pc = pc as u32;
            if inst.opcode.is_control() && inst.target as usize >= self.insts.len() {
                return Err(ProgramError::BranchTargetOutOfRange {
                    pc,
                    target: inst.target,
                    len: self.insts.len(),
                });
            }
            match inst.opcode.dest_class() {
                Some(class) => match inst.dest {
                    Some(d) if d.class() == class => {}
                    Some(d) => {
                        return Err(ProgramError::MalformedOperands {
                            pc,
                            detail: format!(
                                "destination {d} has class {}, opcode {} writes {class}",
                                d.class(),
                                inst.opcode
                            ),
                        })
                    }
                    None => {
                        return Err(ProgramError::MalformedOperands {
                            pc,
                            detail: format!("opcode {} requires a destination", inst.opcode),
                        })
                    }
                },
                None => {
                    if inst.dest.is_some() {
                        return Err(ProgramError::MalformedOperands {
                            pc,
                            detail: format!("opcode {} does not write a destination", inst.opcode),
                        });
                    }
                }
            }
            if inst.opcode.is_mem() && inst.src1.is_none() {
                return Err(ProgramError::MalformedOperands {
                    pc,
                    detail: "memory operation without a base register".to_string(),
                });
            }
            if inst.opcode.is_store() && inst.src2.is_none() {
                return Err(ProgramError::MalformedOperands {
                    pc,
                    detail: "store without a value register".to_string(),
                });
            }
        }
        Ok(())
    }

    /// Fraction of static instructions that are loads.
    pub fn static_load_fraction(&self) -> f64 {
        if self.insts.is_empty() {
            return 0.0;
        }
        let loads = self.insts.iter().filter(|i| i.opcode.is_load()).count();
        loads as f64 / self.insts.len() as f64
    }

    /// Stable content hash of the whole program: instructions, entry point,
    /// initial memory image and initial registers all enter the hash, so two
    /// programs hash equal exactly when they simulate identically. Backs the
    /// result-cache and snapshot keys (`pre-sim`).
    ///
    /// Memoized per instance (first call computes, later calls are free);
    /// see the `hash_memo` field for the mutate-after-hash caveat.
    pub fn content_hash(&self) -> u64 {
        *self.hash_memo.get_or_init(|| self.compute_content_hash())
    }

    fn compute_content_hash(&self) -> u64 {
        let mut h = crate::hash::StableHasher::new();
        h.write_str(&self.name);
        h.write_u64(u64::from(self.entry));
        h.write_u64(self.insts.len() as u64);
        for inst in &self.insts {
            h.write_u64(crate::hash::stable_hash_of_debug(inst));
        }
        h.write_u64(self.initial_mem.len() as u64);
        for &(addr, value) in &self.initial_mem {
            h.write_u64(addr);
            h.write_u64(value);
        }
        h.write_u64(self.initial_mem_bytes.len() as u64);
        for &(addr, byte) in &self.initial_mem_bytes {
            h.write_u64(addr);
            h.write_u64(u64::from(byte));
        }
        h.write_u64(self.initial_regs.len() as u64);
        for &(reg, value) in &self.initial_regs {
            h.write_u64(reg.flat_index() as u64);
            h.write_u64(value);
        }
        h.finish()
    }

    /// Builds a fresh functional memory initialized with the program's image.
    pub fn build_memory(&self) -> FuncMem {
        let mut mem = FuncMem::new();
        mem.init_from(self.initial_mem.iter().copied());
        mem.init_bytes_from(self.initial_mem_bytes.iter().copied());
        mem
    }

    /// Builds the initial architectural register file.
    pub fn build_registers(&self) -> [u64; NUM_ARCH_REGS] {
        let mut regs = [0u64; NUM_ARCH_REGS];
        for &(reg, value) in &self.initial_regs {
            regs[reg.flat_index()] = value;
        }
        regs
    }
}

/// Architectural state snapshot produced by the reference interpreter and by
/// the out-of-order core at commit, used to cross-check correctness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArchSnapshot {
    /// Architectural register values, indexed by flat register index.
    pub regs: [u64; NUM_ARCH_REGS],
    /// Number of instructions architecturally completed.
    pub retired: u64,
    /// Order-sensitive checksum of all committed stores
    /// (`hash(addr, value, sequence)` folded together).
    pub store_checksum: u64,
    /// Number of committed store operations.
    pub stores: u64,
    /// Next PC to execute.
    pub next_pc: u32,
}

/// Folds one committed store into a running checksum.
///
/// Both the reference interpreter and the out-of-order core use this so that
/// their memory-update streams can be compared without comparing whole
/// memory images.
pub fn fold_store_checksum(checksum: u64, addr: u64, value: u64, seq: u64) -> u64 {
    let mut z = checksum ^ addr.rotate_left(17) ^ value.rotate_left(33) ^ seq;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^ (z >> 27)
}

/// In-order functional interpreter: the golden model.
#[derive(Debug, Clone)]
pub struct Interpreter {
    program: Program,
    regs: [u64; NUM_ARCH_REGS],
    mem: FuncMem,
    pc: u32,
    retired: u64,
    store_checksum: u64,
    stores: u64,
    loads: u64,
    branches: u64,
    taken_branches: u64,
    halted: bool,
}

impl Interpreter {
    /// Creates an interpreter positioned at the program entry point.
    pub fn new(program: &Program) -> Self {
        Interpreter {
            regs: program.build_registers(),
            mem: program.build_memory(),
            pc: program.entry,
            program: program.clone(),
            retired: 0,
            store_checksum: 0,
            stores: 0,
            loads: 0,
            branches: 0,
            taken_branches: 0,
            halted: false,
        }
    }

    /// `true` once the program counter has left the program (fell off the
    /// end); no further steps execute.
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Current program counter.
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// Number of instructions retired so far.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Number of dynamic loads executed.
    pub fn loads(&self) -> u64 {
        self.loads
    }

    /// Number of dynamic conditional branches executed and how many were taken.
    pub fn branch_profile(&self) -> (u64, u64) {
        (self.branches, self.taken_branches)
    }

    /// Reads an architectural register.
    pub fn reg(&self, reg: ArchReg) -> u64 {
        self.regs[reg.flat_index()]
    }

    /// Read-only view of the functional memory.
    pub fn memory(&self) -> &FuncMem {
        &self.mem
    }

    /// Read-only view of the whole architectural register file.
    pub fn regs(&self) -> &[u64; NUM_ARCH_REGS] {
        &self.regs
    }

    /// Consumes the interpreter, yielding its functional memory (avoids
    /// cloning the full image when capturing a snapshot).
    pub fn into_memory(self) -> FuncMem {
        self.mem
    }

    /// Executes one instruction. Returns `false` when the interpreter is
    /// halted (PC outside the program) and nothing was executed.
    pub fn step(&mut self) -> bool {
        self.step_traced(None)
    }

    /// Executes one instruction, optionally recording its cache-relevant
    /// events (instruction fetch, load/store addresses, branch outcome)
    /// into `trace`. This is the single execution path — [`Interpreter::step`]
    /// is this with no trace — so traced warm-up and untraced golden runs
    /// cannot diverge.
    pub fn step_traced(&mut self, trace: Option<&mut WarmTrace>) -> bool {
        if self.halted {
            return false;
        }
        let inst = match self.program.inst_at(self.pc) {
            Some(i) => *i,
            None => {
                self.halted = true;
                return false;
            }
        };
        let pc = self.pc;
        let src1 = inst.src1.map(|r| self.regs[r.flat_index()]).unwrap_or(0);
        let src2 = inst.src2.map(|r| self.regs[r.flat_index()]).unwrap_or(0);
        let mut load_addr = None;
        let loaded = if let Some(access) = inst.opcode.load_access() {
            self.loads += 1;
            let addr = inst.effective_address(src1);
            load_addr = Some(addr);
            Some(self.mem.load_bytes(addr, access.width.bytes()))
        } else {
            None
        };
        let out = inst.execute(self.pc, src1, src2, loaded);
        if let (Some(dest), Some(result)) = (inst.dest, out.result) {
            self.regs[dest.flat_index()] = result;
        }
        let mut store_addr = None;
        if let (Some(addr), Some(value)) = (out.mem_addr, out.store_value) {
            let width = inst.opcode.store_width().expect("store has a width");
            self.stores += 1;
            self.store_checksum =
                fold_store_checksum(self.store_checksum, addr, value, self.stores);
            self.mem.store_bytes(addr, width.bytes(), value);
            store_addr = Some(addr);
        }
        if inst.opcode.is_cond_branch() {
            self.branches += 1;
            if out.taken == Some(true) {
                self.taken_branches += 1;
            }
        }
        if let Some(trace) = trace {
            trace.record_ifetch(pc);
            if let Some(addr) = load_addr {
                trace.record_load(addr);
            }
            if let Some(addr) = store_addr {
                trace.record_store(addr);
            }
            if inst.opcode.is_cond_branch() {
                trace.record_branch(pc, out.taken == Some(true), out.next_pc);
            }
        }
        self.pc = out.next_pc;
        self.retired += 1;
        if self.pc as usize >= self.program.len() {
            self.halted = true;
        }
        true
    }

    /// Executes up to `n` instructions; returns how many actually executed.
    pub fn run(&mut self, n: u64) -> u64 {
        let mut executed = 0;
        while executed < n && self.step() {
            executed += 1;
        }
        executed
    }

    /// Executes up to `n` instructions recording the warm-up trace; returns
    /// how many actually executed.
    pub fn run_warm(&mut self, n: u64, trace: &mut WarmTrace) -> u64 {
        let mut executed = 0;
        while executed < n && self.step_traced(Some(trace)) {
            executed += 1;
        }
        executed
    }

    /// Snapshot of the architectural state for comparison against the
    /// out-of-order core.
    pub fn snapshot(&self) -> ArchSnapshot {
        ArchSnapshot {
            regs: self.regs,
            retired: self.retired,
            store_checksum: self.store_checksum,
            stores: self.stores,
            next_pc: self.pc,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{AluOp, BranchCond};

    /// A loop that sums a strided array: the canonical tiny workload.
    fn sum_loop() -> Program {
        let mut p = Program::new("sum-loop");
        let base = ArchReg::int(1);
        let idx = ArchReg::int(2);
        let acc = ArchReg::int(3);
        let limit = ArchReg::int(4);
        let tmp = ArchReg::int(5);
        let addr = ArchReg::int(6);
        p.insts = vec![
            StaticInst::load_imm(base, 0x10_000), // 0
            StaticInst::load_imm(idx, 0),         // 1
            StaticInst::load_imm(acc, 0),         // 2
            StaticInst::load_imm(limit, 64),      // 3
            // loop:
            StaticInst::int_alu(AluOp::Add, addr, base, idx), // 4
            StaticInst::load(tmp, addr, 0),                   // 5
            StaticInst::int_alu(AluOp::Add, acc, acc, tmp),   // 6
            StaticInst::int_alu_imm(AluOp::Add, idx, idx, 8), // 7
            StaticInst::branch(BranchCond::Lt, idx, limit, 4), // 8
            StaticInst::store(acc, base, 4096),               // 9
        ];
        p.initial_mem = (0..8).map(|i| (0x10_000 + i * 8, i + 1)).collect();
        p
    }

    #[test]
    fn validate_accepts_well_formed_program() {
        sum_loop().validate().unwrap();
    }

    #[test]
    fn validate_rejects_empty_program() {
        assert_eq!(Program::new("x").validate(), Err(ProgramError::Empty));
    }

    #[test]
    fn validate_rejects_bad_branch_target() {
        let mut p = sum_loop();
        p.insts[8].target = 1000;
        assert!(matches!(
            p.validate(),
            Err(ProgramError::BranchTargetOutOfRange { .. })
        ));
    }

    #[test]
    fn validate_rejects_wrong_dest_class() {
        let mut p = sum_loop();
        p.insts[5].dest = Some(ArchReg::fp(0));
        assert!(matches!(
            p.validate(),
            Err(ProgramError::MalformedOperands { .. })
        ));
    }

    #[test]
    fn interpreter_sums_the_array() {
        let p = sum_loop();
        let mut interp = Interpreter::new(&p);
        while interp.step() {}
        assert!(interp.halted());
        // 1 + 2 + ... + 8 = 36
        assert_eq!(interp.reg(ArchReg::int(3)), 36);
        assert_eq!(interp.memory().load_u64(0x10_000 + 4096), 36);
        assert_eq!(interp.loads(), 8);
        let (branches, taken) = interp.branch_profile();
        assert_eq!(branches, 8);
        assert_eq!(taken, 7);
    }

    #[test]
    fn interpreter_run_respects_budget() {
        let p = sum_loop();
        let mut interp = Interpreter::new(&p);
        assert_eq!(interp.run(5), 5);
        assert_eq!(interp.retired(), 5);
        assert!(!interp.halted());
    }

    #[test]
    fn snapshots_of_identical_runs_match() {
        let p = sum_loop();
        let mut a = Interpreter::new(&p);
        let mut b = Interpreter::new(&p);
        a.run(20);
        b.run(20);
        assert_eq!(a.snapshot(), b.snapshot());
    }

    #[test]
    fn store_checksum_is_order_sensitive() {
        let c1 = fold_store_checksum(fold_store_checksum(0, 0x10, 1, 1), 0x20, 2, 2);
        let c2 = fold_store_checksum(fold_store_checksum(0, 0x20, 2, 1), 0x10, 1, 2);
        assert_ne!(c1, c2);
    }

    #[test]
    fn static_load_fraction_counts_loads() {
        let p = sum_loop();
        assert!((p.static_load_fraction() - 0.1).abs() < 1e-9);
    }

    #[test]
    fn content_hash_tracks_program_contents() {
        let p = sum_loop();
        assert_eq!(p.content_hash(), sum_loop().content_hash());
        let mut edited = sum_loop();
        edited.insts[7].imm += 8;
        assert_ne!(p.content_hash(), edited.content_hash());
        let mut remem = sum_loop();
        remem.initial_mem[0].1 ^= 1;
        assert_ne!(p.content_hash(), remem.content_hash());
    }

    #[test]
    fn traced_and_untraced_execution_are_identical() {
        let p = sum_loop();
        let mut traced = Interpreter::new(&p);
        let mut plain = Interpreter::new(&p);
        let mut trace = crate::snapshot::WarmTrace::new();
        while traced.step_traced(Some(&mut trace)) {
            plain.step();
        }
        assert!(!plain.step());
        assert_eq!(traced.snapshot(), plain.snapshot());
        // Every load and store of the run appears in the trace.
        let loads = trace
            .events
            .iter()
            .filter(|e| matches!(e, crate::snapshot::WarmEvent::Load(_)))
            .count() as u64;
        let stores = trace
            .events
            .iter()
            .filter(|e| matches!(e, crate::snapshot::WarmEvent::Store(_)))
            .count() as u64;
        assert_eq!(loads, traced.loads());
        assert_eq!(stores, traced.snapshot().stores);
        let (branches, _) = traced.branch_profile();
        assert_eq!(trace.branches.len() as u64, branches);
    }
}
