//! Common model types for the Precise Runahead Execution (PRE) simulator.
//!
//! This crate defines everything the rest of the workspace agrees on:
//!
//! * the synthetic micro-op ISA executed by the simulator ([`isa`]),
//! * architectural and physical register identifiers ([`reg`]),
//! * the functional memory image used for execution-driven simulation
//!   ([`mem`]),
//! * static programs built from the ISA ([`program`]),
//! * the simulator configuration, defaulting to the paper's Table 1
//!   Haswell-like core ([`config`]),
//! * and the statistics each run produces ([`stats`]).
//!
//! # Example
//!
//! ```
//! use pre_model::config::SimConfig;
//!
//! let cfg = SimConfig::haswell_like();
//! assert_eq!(cfg.core.rob_entries, 192);
//! assert_eq!(cfg.core.int_phys_regs, 168);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod config;
pub mod error;
pub mod hash;
pub mod isa;
pub mod mem;
pub mod profile;
pub mod program;
pub mod reg;
pub mod rng;
pub mod snapshot;
pub mod stats;

pub use config::SimConfig;
pub use error::ConfigError;
pub use hash::{stable_hash_of_debug, StableHasher};
pub use isa::{AluOp, BranchCond, Opcode, StaticInst};
pub use mem::FuncMem;
pub use profile::{
    cluster_intervals, profile_intervals, Bbv, Clustering, IntervalProfile, ProfiledInterval,
    Representative,
};
pub use program::Program;
pub use reg::{ArchReg, PhysReg, RegClass};
pub use snapshot::{SimSnapshot, WarmBranch, WarmEvent, WarmTrace};
pub use stats::SimStats;
