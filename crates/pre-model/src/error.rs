//! Error types for configuration and program validation.

use std::error::Error;
use std::fmt;

/// Error returned when a simulator configuration is inconsistent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// A structure was configured with zero capacity.
    ZeroCapacity {
        /// Name of the offending structure (e.g. `"rob_entries"`).
        field: &'static str,
    },
    /// A value that must be a power of two is not.
    NotPowerOfTwo {
        /// Name of the offending field.
        field: &'static str,
        /// The rejected value.
        value: u64,
    },
    /// The physical register file is too small to cover the architectural
    /// registers plus at least one rename.
    TooFewPhysRegs {
        /// Register class with the shortfall.
        class: &'static str,
        /// Configured number of physical registers.
        configured: usize,
        /// Minimum required.
        required: usize,
    },
    /// A pipeline width exceeds a supported bound.
    WidthOutOfRange {
        /// Name of the offending field.
        field: &'static str,
        /// The rejected value.
        value: usize,
        /// Maximum supported value.
        max: usize,
    },
    /// Cache geometry is inconsistent (size not divisible by line × assoc).
    BadCacheGeometry {
        /// Which cache is misconfigured.
        cache: &'static str,
        /// Explanation of the inconsistency.
        detail: String,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroCapacity { field } => {
                write!(f, "configuration field `{field}` must be non-zero")
            }
            ConfigError::NotPowerOfTwo { field, value } => {
                write!(
                    f,
                    "configuration field `{field}` must be a power of two, got {value}"
                )
            }
            ConfigError::TooFewPhysRegs {
                class,
                configured,
                required,
            } => write!(
                f,
                "{class} physical register file has {configured} entries, need at least {required}"
            ),
            ConfigError::WidthOutOfRange { field, value, max } => {
                write!(
                    f,
                    "configuration field `{field}` is {value}, maximum supported is {max}"
                )
            }
            ConfigError::BadCacheGeometry { cache, detail } => {
                write!(f, "inconsistent {cache} geometry: {detail}")
            }
        }
    }
}

impl Error for ConfigError {}

/// Error returned when a synthetic program fails validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgramError {
    /// The program contains no instructions.
    Empty,
    /// A control instruction targets a PC outside the program.
    BranchTargetOutOfRange {
        /// PC of the offending instruction.
        pc: u32,
        /// The out-of-range target.
        target: u32,
        /// Program length.
        len: usize,
    },
    /// The entry point is outside the program.
    EntryOutOfRange {
        /// The out-of-range entry PC.
        entry: u32,
        /// Program length.
        len: usize,
    },
    /// An instruction's operands are inconsistent with its opcode (e.g. a
    /// load without a destination register).
    MalformedOperands {
        /// PC of the offending instruction.
        pc: u32,
        /// Explanation of the inconsistency.
        detail: String,
    },
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::Empty => write!(f, "program has no instructions"),
            ProgramError::BranchTargetOutOfRange { pc, target, len } => write!(
                f,
                "instruction at pc {pc} targets {target}, but the program has {len} instructions"
            ),
            ProgramError::EntryOutOfRange { entry, len } => {
                write!(
                    f,
                    "entry point {entry} is outside the program of length {len}"
                )
            }
            ProgramError::MalformedOperands { pc, detail } => {
                write!(f, "malformed instruction at pc {pc}: {detail}")
            }
        }
    }
}

impl Error for ProgramError {}

/// Diagnostic snapshot attached to a watchdog abort.
///
/// When the deadlock watchdog fires (no commit for a whole watchdog window)
/// the run is capped rather than left spinning; this dump captures where the
/// machine was wedged so the failure is actionable instead of silent.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WatchdogDiag {
    /// Cycle at which the watchdog fired.
    pub cycle: u64,
    /// Micro-ops committed before the machine wedged.
    pub committed_uops: u64,
    /// ROB entries occupied when the watchdog fired.
    pub rob_occupancy: usize,
    /// Configured ROB capacity.
    pub rob_capacity: usize,
    /// Issue-queue entries occupied when the watchdog fired.
    pub iq_occupancy: usize,
    /// Configured issue-queue capacity.
    pub iq_capacity: usize,
    /// Most recent committed uops as `(cycle, pc)`, oldest first, from the
    /// pre-trace commit ring.
    pub last_commits: Vec<(u64, u32)>,
}

impl fmt::Display for WatchdogDiag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "watchdog fired at cycle {} after {} committed uops (rob {}/{}, iq {}/{})",
            self.cycle,
            self.committed_uops,
            self.rob_occupancy,
            self.rob_capacity,
            self.iq_occupancy,
            self.iq_capacity,
        )?;
        if self.last_commits.is_empty() {
            write!(f, "; no commits recorded")
        } else {
            write!(f, "; last commits (cycle:pc):")?;
            for (cycle, pc) in &self.last_commits {
                write!(f, " {cycle}:{pc:#x}")?;
            }
            Ok(())
        }
    }
}

/// Unified error taxonomy for a full simulation run.
///
/// Everything that can go wrong between "here is a run spec" and "here are
/// its stats" — configuration and program validation, tracer setup, snapshot
/// capture/restore, disk-cache decode, watchdog aborts, and panics captured
/// by the supervised pool — is one of these variants, so matrix and sweep
/// reports can carry failures as data instead of tearing the process down.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The simulator configuration failed validation.
    Config(ConfigError),
    /// The workload program failed validation.
    Program(ProgramError),
    /// A tracer could not be constructed or attached.
    Trace(String),
    /// A warm-up snapshot could not be captured, serialized, or restored.
    Snapshot {
        /// Explanation of the failure.
        detail: String,
    },
    /// A disk-cache entry could not be read, decoded, or written.
    Cache {
        /// Path of the offending cache file.
        path: String,
        /// Explanation of the failure.
        detail: String,
    },
    /// The deadlock watchdog aborted the run; diagnostics attached.
    Watchdog(Box<WatchdogDiag>),
    /// A worker panicked while running this cell; payload captured by the
    /// supervised pool.
    Panic {
        /// Stringified panic payload.
        detail: String,
    },
    /// The cell was never attempted because a `--fail-fast` run aborted the
    /// grid after an earlier failure.
    Skipped,
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Config(e) => write!(f, "config error: {e}"),
            SimError::Program(e) => write!(f, "program error: {e}"),
            SimError::Trace(detail) => write!(f, "trace error: {detail}"),
            SimError::Snapshot { detail } => write!(f, "snapshot error: {detail}"),
            SimError::Cache { path, detail } => {
                write!(f, "cache error at {path}: {detail}")
            }
            SimError::Watchdog(diag) => write!(f, "{diag}"),
            SimError::Panic { detail } => write!(f, "cell panicked: {detail}"),
            SimError::Skipped => write!(f, "skipped after earlier failure (fail-fast)"),
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Config(e) => Some(e),
            SimError::Program(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ConfigError> for SimError {
    fn from(e: ConfigError) -> Self {
        SimError::Config(e)
    }
}

impl From<ProgramError> for SimError {
    fn from(e: ProgramError) -> Self {
        SimError::Program(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = ConfigError::ZeroCapacity {
            field: "rob_entries",
        };
        assert!(e.to_string().contains("rob_entries"));
        let e = ProgramError::Empty;
        assert!(e.to_string().contains("no instructions"));
    }

    #[test]
    fn errors_are_std_errors() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<ConfigError>();
        assert_err::<ProgramError>();
        assert_err::<SimError>();
    }

    #[test]
    fn sim_error_wraps_validation_errors() {
        let config_err = ConfigError::ZeroCapacity {
            field: "rob_entries",
        };
        let wrapped: SimError = config_err.clone().into();
        assert_eq!(wrapped, SimError::Config(config_err));
        assert!(wrapped.to_string().starts_with("config error:"));
        assert!(wrapped.source().is_some());

        let program_err: SimError = ProgramError::Empty.into();
        assert!(program_err.to_string().contains("no instructions"));
    }

    #[test]
    fn watchdog_diag_display_includes_occupancy_and_commits() {
        let diag = WatchdogDiag {
            cycle: 123_456,
            committed_uops: 789,
            rob_occupancy: 192,
            rob_capacity: 192,
            iq_occupancy: 10,
            iq_capacity: 60,
            last_commits: vec![(100, 0x40), (101, 0x44)],
        };
        let text = SimError::Watchdog(Box::new(diag)).to_string();
        assert!(text.contains("cycle 123456"), "{text}");
        assert!(text.contains("rob 192/192"), "{text}");
        assert!(text.contains("101:0x44"), "{text}");
    }
}
