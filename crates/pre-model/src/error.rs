//! Error types for configuration and program validation.

use std::error::Error;
use std::fmt;

/// Error returned when a simulator configuration is inconsistent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// A structure was configured with zero capacity.
    ZeroCapacity {
        /// Name of the offending structure (e.g. `"rob_entries"`).
        field: &'static str,
    },
    /// A value that must be a power of two is not.
    NotPowerOfTwo {
        /// Name of the offending field.
        field: &'static str,
        /// The rejected value.
        value: u64,
    },
    /// The physical register file is too small to cover the architectural
    /// registers plus at least one rename.
    TooFewPhysRegs {
        /// Register class with the shortfall.
        class: &'static str,
        /// Configured number of physical registers.
        configured: usize,
        /// Minimum required.
        required: usize,
    },
    /// A pipeline width exceeds a supported bound.
    WidthOutOfRange {
        /// Name of the offending field.
        field: &'static str,
        /// The rejected value.
        value: usize,
        /// Maximum supported value.
        max: usize,
    },
    /// Cache geometry is inconsistent (size not divisible by line × assoc).
    BadCacheGeometry {
        /// Which cache is misconfigured.
        cache: &'static str,
        /// Explanation of the inconsistency.
        detail: String,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroCapacity { field } => {
                write!(f, "configuration field `{field}` must be non-zero")
            }
            ConfigError::NotPowerOfTwo { field, value } => {
                write!(
                    f,
                    "configuration field `{field}` must be a power of two, got {value}"
                )
            }
            ConfigError::TooFewPhysRegs {
                class,
                configured,
                required,
            } => write!(
                f,
                "{class} physical register file has {configured} entries, need at least {required}"
            ),
            ConfigError::WidthOutOfRange { field, value, max } => {
                write!(
                    f,
                    "configuration field `{field}` is {value}, maximum supported is {max}"
                )
            }
            ConfigError::BadCacheGeometry { cache, detail } => {
                write!(f, "inconsistent {cache} geometry: {detail}")
            }
        }
    }
}

impl Error for ConfigError {}

/// Error returned when a synthetic program fails validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgramError {
    /// The program contains no instructions.
    Empty,
    /// A control instruction targets a PC outside the program.
    BranchTargetOutOfRange {
        /// PC of the offending instruction.
        pc: u32,
        /// The out-of-range target.
        target: u32,
        /// Program length.
        len: usize,
    },
    /// The entry point is outside the program.
    EntryOutOfRange {
        /// The out-of-range entry PC.
        entry: u32,
        /// Program length.
        len: usize,
    },
    /// An instruction's operands are inconsistent with its opcode (e.g. a
    /// load without a destination register).
    MalformedOperands {
        /// PC of the offending instruction.
        pc: u32,
        /// Explanation of the inconsistency.
        detail: String,
    },
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::Empty => write!(f, "program has no instructions"),
            ProgramError::BranchTargetOutOfRange { pc, target, len } => write!(
                f,
                "instruction at pc {pc} targets {target}, but the program has {len} instructions"
            ),
            ProgramError::EntryOutOfRange { entry, len } => {
                write!(
                    f,
                    "entry point {entry} is outside the program of length {len}"
                )
            }
            ProgramError::MalformedOperands { pc, detail } => {
                write!(f, "malformed instruction at pc {pc}: {detail}")
            }
        }
    }
}

impl Error for ProgramError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = ConfigError::ZeroCapacity {
            field: "rob_entries",
        };
        assert!(e.to_string().contains("rob_entries"));
        let e = ProgramError::Empty;
        assert!(e.to_string().contains("no instructions"));
    }

    #[test]
    fn errors_are_std_errors() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<ConfigError>();
        assert_err::<ProgramError>();
    }
}
