//! The synthetic micro-op ISA executed by the simulator.
//!
//! The ISA is a small load/store RISC: integer and floating-point ALU
//! operations, loads and stores with base+displacement addressing,
//! conditional branches and unconditional jumps. It is deliberately simple —
//! the paper's mechanisms (runahead execution, stalling-slice tracking,
//! register reclamation) depend only on *data-flow between registers and
//! memory*, not on a rich instruction set — but it is fully executable: every
//! micro-op has defined functional semantics so the out-of-order core and the
//! runahead engines compute real addresses and real values.

use crate::reg::{ArchReg, RegClass};
use std::fmt;

/// Integer/floating-point ALU operation kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Logical shift left (by `src2 & 63` or `imm & 63`).
    Shl,
    /// Logical shift right.
    Shr,
    /// Arithmetic shift right (sign bit replicates into vacated bits).
    Sra,
}

impl AluOp {
    /// Applies the ALU operation to two 64-bit operands.
    pub fn apply(&self, a: u64, b: u64) -> u64 {
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Shl => a.wrapping_shl((b & 63) as u32),
            AluOp::Shr => a.wrapping_shr((b & 63) as u32),
            AluOp::Sra => (a as i64).wrapping_shr((b & 63) as u32) as u64,
        }
    }
}

/// Memory access width: byte, halfword, word (32-bit) or doubleword.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemWidth {
    /// 1 byte.
    B,
    /// 2 bytes (halfword).
    H,
    /// 4 bytes (RISC-V word).
    W,
    /// 8 bytes (doubleword, the full register width).
    D,
}

impl MemWidth {
    /// Number of bytes transferred by an access of this width.
    pub const fn bytes(self) -> u64 {
        match self {
            MemWidth::B => 1,
            MemWidth::H => 2,
            MemWidth::W => 4,
            MemWidth::D => 8,
        }
    }

    /// Bit mask selecting the low `bytes()` bytes of a register value.
    pub const fn mask(self) -> u64 {
        match self {
            MemWidth::D => u64::MAX,
            w => (1u64 << (w.bytes() * 8)) - 1,
        }
    }

    /// Aligns `addr` down to this width (accesses are naturally aligned:
    /// the effective address of a width-`N` access has its low `log2(N)`
    /// bits cleared, which for `D` reproduces the historical 8-byte-word
    /// aliasing exactly).
    pub const fn align(self, addr: u64) -> u64 {
        addr & !(self.bytes() - 1)
    }
}

impl fmt::Display for MemWidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            MemWidth::B => "b",
            MemWidth::H => "h",
            MemWidth::W => "w",
            MemWidth::D => "d",
        })
    }
}

/// `true` when the byte range `[addr, addr + len)` lies entirely inside
/// `[store_addr, store_addr + store_len)`. Ends are compared inclusively so
/// ranges at the very top of the address space cannot wrap.
pub const fn range_contains(store_addr: u64, store_len: u64, addr: u64, len: u64) -> bool {
    store_addr <= addr && addr + (len - 1) <= store_addr + (store_len - 1)
}

/// `true` when the byte ranges `[a, a + a_len)` and `[b, b + b_len)` share
/// at least one byte (inclusive-end comparison, wrap-safe).
pub const fn ranges_overlap(a: u64, a_len: u64, b: u64, b_len: u64) -> bool {
    a <= b + (b_len - 1) && b <= a + (a_len - 1)
}

/// Extracts the `len` bytes at `addr` out of a (little-endian) store value
/// whose range starts at `store_addr`, zero-extended. The load range must be
/// contained in the store's ([`range_contains`]).
pub const fn extract_forwarded_bytes(
    store_addr: u64,
    store_value: u64,
    addr: u64,
    len: u64,
) -> u64 {
    let shifted = store_value >> (8 * (addr - store_addr));
    if len == 8 {
        shifted
    } else {
        shifted & ((1u64 << (8 * len)) - 1)
    }
}

/// A load's access shape: width plus how the loaded value fills the
/// destination register (sign- or zero-extension).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemAccess {
    /// Access width.
    pub width: MemWidth,
    /// `true` for sign-extending loads (`lb`/`lh`/`lw`), `false` for
    /// zero-extending ones (`lbu`/`lhu`/`lwu`). Irrelevant for `D` (the
    /// full register is replaced either way).
    pub signed: bool,
}

impl MemAccess {
    /// The full-width (64-bit) access every pre-existing load used.
    pub const D: MemAccess = MemAccess {
        width: MemWidth::D,
        signed: false,
    };

    /// Sign-extending access of the given width.
    pub const fn signed(width: MemWidth) -> Self {
        MemAccess {
            width,
            signed: true,
        }
    }

    /// Zero-extending access of the given width.
    pub const fn unsigned(width: MemWidth) -> Self {
        MemAccess {
            width,
            signed: false,
        }
    }

    /// Extends the raw loaded bytes (zero-extended in the low bits of
    /// `raw`) to the destination register value: an arithmetic shift pair
    /// for signed loads, a mask for unsigned ones.
    pub const fn extend(self, raw: u64) -> u64 {
        let shift = 64 - self.width.bytes() * 8;
        if shift == 0 {
            raw
        } else if self.signed {
            (((raw << shift) as i64) >> shift) as u64
        } else {
            raw & self.width.mask()
        }
    }
}

/// Conditions for conditional branches (comparing `src1` against `src2`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchCond {
    /// Taken if `src1 == src2`.
    Eq,
    /// Taken if `src1 != src2`.
    Ne,
    /// Taken if `src1 < src2` (unsigned).
    Lt,
    /// Taken if `src1 >= src2` (unsigned).
    Ge,
}

impl BranchCond {
    /// Evaluates the branch condition on two operand values.
    pub fn taken(&self, a: u64, b: u64) -> bool {
        match self {
            BranchCond::Eq => a == b,
            BranchCond::Ne => a != b,
            BranchCond::Lt => a < b,
            BranchCond::Ge => a >= b,
        }
    }
}

/// Micro-op opcodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Opcode {
    /// No operation.
    Nop,
    /// Integer ALU operation: `dest = src1 op (src2 | imm)`.
    IntAlu(AluOp),
    /// Integer multiply: `dest = src1 * (src2 | imm)`.
    IntMul,
    /// Floating-point ALU operation (operates on raw 64-bit payloads).
    FpAlu(AluOp),
    /// Floating-point multiply.
    FpMul,
    /// Floating-point divide (long latency).
    FpDiv,
    /// Load immediate: `dest = imm`.
    LoadImm,
    /// Integer load: `dest = extend(mem[src1 + imm])`, at the carried
    /// access width and extension.
    Load(MemAccess),
    /// Floating-point load: `dest = mem[src1 + imm]` (always 8 bytes).
    FpLoad,
    /// Integer store: `mem[src1 + imm] = low_bytes(src2)`, at the carried
    /// width.
    Store(MemWidth),
    /// Floating-point store: `mem[src1 + imm] = src2` (always 8 bytes).
    FpStore,
    /// Conditional branch to `target` when the condition holds on `(src1, src2)`.
    Branch(BranchCond),
    /// Unconditional jump to `target`.
    Jump,
}

/// Functional-unit classes used for scheduling and latency selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// No-op (consumes a pipeline slot only).
    Nop,
    /// Single-cycle integer ALU.
    IntAlu,
    /// Integer multiplier.
    IntMul,
    /// Floating-point adder.
    FpAlu,
    /// Floating-point multiplier.
    FpMul,
    /// Floating-point divider.
    FpDiv,
    /// Load port (address generation + cache access).
    Load,
    /// Store port.
    Store,
    /// Branch unit.
    Branch,
}

impl OpClass {
    /// Number of functional-unit classes (the length of [`OpClass::ALL`]).
    pub const COUNT: usize = 9;

    /// All functional-unit classes, in discriminant order (so
    /// `ALL[c.index()] == c`).
    pub const ALL: [OpClass; OpClass::COUNT] = [
        OpClass::Nop,
        OpClass::IntAlu,
        OpClass::IntMul,
        OpClass::FpAlu,
        OpClass::FpMul,
        OpClass::FpDiv,
        OpClass::Load,
        OpClass::Store,
        OpClass::Branch,
    ];

    /// Dense index of this class in `0..OpClass::COUNT`, usable for flat
    /// per-class tables (issue ports, ready queues) without hashing.
    pub fn index(self) -> usize {
        self as usize
    }
}

impl Opcode {
    /// The functional-unit class this opcode executes on.
    pub fn class(&self) -> OpClass {
        match self {
            Opcode::Nop => OpClass::Nop,
            Opcode::IntAlu(_) | Opcode::LoadImm => OpClass::IntAlu,
            Opcode::IntMul => OpClass::IntMul,
            Opcode::FpAlu(_) => OpClass::FpAlu,
            Opcode::FpMul => OpClass::FpMul,
            Opcode::FpDiv => OpClass::FpDiv,
            Opcode::Load(_) | Opcode::FpLoad => OpClass::Load,
            Opcode::Store(_) | Opcode::FpStore => OpClass::Store,
            Opcode::Branch(_) | Opcode::Jump => OpClass::Branch,
        }
    }

    /// `true` for loads (integer or floating point).
    pub fn is_load(&self) -> bool {
        matches!(self, Opcode::Load(_) | Opcode::FpLoad)
    }

    /// `true` for stores (integer or floating point).
    pub fn is_store(&self) -> bool {
        matches!(self, Opcode::Store(_) | Opcode::FpStore)
    }

    /// The access shape of a load (floating-point loads are full-width),
    /// `None` for non-loads.
    pub fn load_access(&self) -> Option<MemAccess> {
        match self {
            Opcode::Load(a) => Some(*a),
            Opcode::FpLoad => Some(MemAccess::D),
            _ => None,
        }
    }

    /// The width of a store (floating-point stores are full-width), `None`
    /// for non-stores.
    pub fn store_width(&self) -> Option<MemWidth> {
        match self {
            Opcode::Store(w) => Some(*w),
            Opcode::FpStore => Some(MemWidth::D),
            _ => None,
        }
    }

    /// The access width of any memory operation, `None` otherwise.
    pub fn mem_width(&self) -> Option<MemWidth> {
        match self {
            Opcode::Load(a) => Some(a.width),
            Opcode::Store(w) => Some(*w),
            Opcode::FpLoad | Opcode::FpStore => Some(MemWidth::D),
            _ => None,
        }
    }

    /// `true` for any memory operation.
    pub fn is_mem(&self) -> bool {
        self.is_load() || self.is_store()
    }

    /// `true` for conditional branches and unconditional jumps.
    pub fn is_control(&self) -> bool {
        matches!(self, Opcode::Branch(_) | Opcode::Jump)
    }

    /// `true` only for conditional branches.
    pub fn is_cond_branch(&self) -> bool {
        matches!(self, Opcode::Branch(_))
    }

    /// The register class of the destination this opcode writes, if any.
    pub fn dest_class(&self) -> Option<RegClass> {
        match self {
            Opcode::IntAlu(_) | Opcode::IntMul | Opcode::LoadImm | Opcode::Load(_) => {
                Some(RegClass::Int)
            }
            Opcode::FpAlu(_) | Opcode::FpMul | Opcode::FpDiv | Opcode::FpLoad => Some(RegClass::Fp),
            _ => None,
        }
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Opcode::Nop => write!(f, "nop"),
            Opcode::IntAlu(op) => write!(f, "ialu.{op:?}"),
            Opcode::IntMul => write!(f, "imul"),
            Opcode::FpAlu(op) => write!(f, "falu.{op:?}"),
            Opcode::FpMul => write!(f, "fmul"),
            Opcode::FpDiv => write!(f, "fdiv"),
            Opcode::LoadImm => write!(f, "li"),
            Opcode::Load(a) => match (a.width, a.signed) {
                (MemWidth::D, _) => write!(f, "ld"),
                (w, true) => write!(f, "l{w}"),
                (w, false) => write!(f, "l{w}u"),
            },
            Opcode::FpLoad => write!(f, "fld"),
            Opcode::Store(MemWidth::D) => write!(f, "sd"),
            Opcode::Store(w) => write!(f, "s{w}"),
            Opcode::FpStore => write!(f, "fst"),
            Opcode::Branch(c) => write!(f, "b.{c:?}"),
            Opcode::Jump => write!(f, "j"),
        }
    }
}

/// A static instruction: one entry of a [`crate::program::Program`].
///
/// The program counter of an instruction is its index in the program; branch
/// targets are absolute indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StaticInst {
    /// Operation performed by this instruction.
    pub opcode: Opcode,
    /// Destination architectural register, if the opcode writes one.
    pub dest: Option<ArchReg>,
    /// First source register (base address for memory operations).
    pub src1: Option<ArchReg>,
    /// Second source register (stored value for stores, comparison operand
    /// for branches, second ALU operand when present).
    pub src2: Option<ArchReg>,
    /// Immediate operand (displacement for memory operations, literal for
    /// `LoadImm`, second ALU operand when `src2` is absent).
    pub imm: i64,
    /// Absolute branch/jump target (ignored for non-control instructions).
    pub target: u32,
}

impl StaticInst {
    /// A no-op.
    pub fn nop() -> Self {
        StaticInst {
            opcode: Opcode::Nop,
            dest: None,
            src1: None,
            src2: None,
            imm: 0,
            target: 0,
        }
    }

    /// Integer ALU op with a register second operand: `dest = src1 op src2`.
    pub fn int_alu(op: AluOp, dest: ArchReg, src1: ArchReg, src2: ArchReg) -> Self {
        StaticInst {
            opcode: Opcode::IntAlu(op),
            dest: Some(dest),
            src1: Some(src1),
            src2: Some(src2),
            imm: 0,
            target: 0,
        }
    }

    /// Integer ALU op with an immediate second operand: `dest = src1 op imm`.
    pub fn int_alu_imm(op: AluOp, dest: ArchReg, src1: ArchReg, imm: i64) -> Self {
        StaticInst {
            opcode: Opcode::IntAlu(op),
            dest: Some(dest),
            src1: Some(src1),
            src2: None,
            imm,
            target: 0,
        }
    }

    /// Integer multiply: `dest = src1 * src2`.
    pub fn int_mul(dest: ArchReg, src1: ArchReg, src2: ArchReg) -> Self {
        StaticInst {
            opcode: Opcode::IntMul,
            dest: Some(dest),
            src1: Some(src1),
            src2: Some(src2),
            imm: 0,
            target: 0,
        }
    }

    /// Integer multiply by an immediate: `dest = src1 * imm`.
    pub fn int_mul_imm(dest: ArchReg, src1: ArchReg, imm: i64) -> Self {
        StaticInst {
            opcode: Opcode::IntMul,
            dest: Some(dest),
            src1: Some(src1),
            src2: None,
            imm,
            target: 0,
        }
    }

    /// Floating-point ALU op: `dest = src1 op src2`.
    pub fn fp_alu(op: AluOp, dest: ArchReg, src1: ArchReg, src2: ArchReg) -> Self {
        StaticInst {
            opcode: Opcode::FpAlu(op),
            dest: Some(dest),
            src1: Some(src1),
            src2: Some(src2),
            imm: 0,
            target: 0,
        }
    }

    /// Floating-point multiply: `dest = src1 * src2`.
    pub fn fp_mul(dest: ArchReg, src1: ArchReg, src2: ArchReg) -> Self {
        StaticInst {
            opcode: Opcode::FpMul,
            dest: Some(dest),
            src1: Some(src1),
            src2: Some(src2),
            imm: 0,
            target: 0,
        }
    }

    /// Floating-point divide: `dest = src1 / src2`.
    pub fn fp_div(dest: ArchReg, src1: ArchReg, src2: ArchReg) -> Self {
        StaticInst {
            opcode: Opcode::FpDiv,
            dest: Some(dest),
            src1: Some(src1),
            src2: Some(src2),
            imm: 0,
            target: 0,
        }
    }

    /// Load immediate: `dest = imm`.
    pub fn load_imm(dest: ArchReg, imm: i64) -> Self {
        StaticInst {
            opcode: Opcode::LoadImm,
            dest: Some(dest),
            src1: None,
            src2: None,
            imm,
            target: 0,
        }
    }

    /// Integer load: `dest = mem[base + offset]` (full 8-byte width).
    pub fn load(dest: ArchReg, base: ArchReg, offset: i64) -> Self {
        StaticInst::load_width(dest, base, offset, MemAccess::D)
    }

    /// Integer load with an explicit access width and extension:
    /// `dest = extend(mem[base + offset])`.
    pub fn load_width(dest: ArchReg, base: ArchReg, offset: i64, access: MemAccess) -> Self {
        StaticInst {
            opcode: Opcode::Load(access),
            dest: Some(dest),
            src1: Some(base),
            src2: None,
            imm: offset,
            target: 0,
        }
    }

    /// Floating-point load: `dest = mem[base + offset]`.
    pub fn fp_load(dest: ArchReg, base: ArchReg, offset: i64) -> Self {
        StaticInst {
            opcode: Opcode::FpLoad,
            dest: Some(dest),
            src1: Some(base),
            src2: None,
            imm: offset,
            target: 0,
        }
    }

    /// Integer store: `mem[base + offset] = value` (full 8-byte width).
    pub fn store(value: ArchReg, base: ArchReg, offset: i64) -> Self {
        StaticInst::store_width(value, base, offset, MemWidth::D)
    }

    /// Integer store of the low `width` bytes of `value`.
    pub fn store_width(value: ArchReg, base: ArchReg, offset: i64, width: MemWidth) -> Self {
        StaticInst {
            opcode: Opcode::Store(width),
            dest: None,
            src1: Some(base),
            src2: Some(value),
            imm: offset,
            target: 0,
        }
    }

    /// Floating-point store: `mem[base + offset] = value`.
    pub fn fp_store(value: ArchReg, base: ArchReg, offset: i64) -> Self {
        StaticInst {
            opcode: Opcode::FpStore,
            dest: None,
            src1: Some(base),
            src2: Some(value),
            imm: offset,
            target: 0,
        }
    }

    /// Conditional branch: `if cond(src1, src2) goto target`.
    pub fn branch(cond: BranchCond, src1: ArchReg, src2: ArchReg, target: u32) -> Self {
        StaticInst {
            opcode: Opcode::Branch(cond),
            dest: None,
            src1: Some(src1),
            src2: Some(src2),
            imm: 0,
            target,
        }
    }

    /// Unconditional jump to `target`.
    pub fn jump(target: u32) -> Self {
        StaticInst {
            opcode: Opcode::Jump,
            dest: None,
            src1: None,
            src2: None,
            imm: 0,
            target,
        }
    }

    /// Effective memory address for loads/stores, given the resolved base
    /// register value. Accesses are naturally aligned: the raw address is
    /// aligned down to the access width (for the historical 8-byte ops this
    /// reproduces the old word-aliasing behaviour bit for bit; a byte access
    /// is never adjusted).
    pub fn effective_address(&self, base: u64) -> u64 {
        let raw = base.wrapping_add(self.imm as u64);
        match self.opcode.mem_width() {
            Some(width) => width.align(raw),
            None => raw,
        }
    }

    /// Computes the functional result of this instruction.
    ///
    /// `src1`/`src2` are the resolved source operand values (0 when the
    /// operand is absent); `loaded` is the raw (zero-extended) bytes read
    /// from memory for loads — sign/zero extension to the register width
    /// happens here, per the opcode's [`MemAccess`]. Returns the executed
    /// outcome: the destination value (if the opcode writes a register), the
    /// effective memory address and access width (for memory operations),
    /// the truncated value to store (for stores), the branch direction and
    /// the next program counter.
    pub fn execute(&self, pc: u32, src1: u64, src2: u64, loaded: Option<u64>) -> ExecOutcome {
        let fallthrough = pc.wrapping_add(1);
        match self.opcode {
            Opcode::Nop => ExecOutcome::plain(None, fallthrough),
            Opcode::IntAlu(op) | Opcode::FpAlu(op) => {
                let b = if self.src2.is_some() {
                    src2
                } else {
                    self.imm as u64
                };
                ExecOutcome::plain(Some(op.apply(src1, b)), fallthrough)
            }
            Opcode::IntMul | Opcode::FpMul => {
                let b = if self.src2.is_some() {
                    src2
                } else {
                    self.imm as u64
                };
                ExecOutcome::plain(Some(src1.wrapping_mul(b)), fallthrough)
            }
            Opcode::FpDiv => {
                let b = if self.src2.is_some() {
                    src2
                } else {
                    self.imm as u64
                };
                let v = if b == 0 {
                    u64::MAX
                } else {
                    src1.wrapping_div(b)
                };
                ExecOutcome::plain(Some(v), fallthrough)
            }
            Opcode::LoadImm => ExecOutcome::plain(Some(self.imm as u64), fallthrough),
            Opcode::Load(_) | Opcode::FpLoad => {
                let access = self.opcode.load_access().expect("opcode is a load");
                ExecOutcome {
                    result: loaded.map(|raw| access.extend(raw)),
                    mem_addr: Some(self.effective_address(src1)),
                    mem_width: Some(access.width),
                    store_value: None,
                    taken: None,
                    next_pc: fallthrough,
                }
            }
            Opcode::Store(_) | Opcode::FpStore => {
                let width = self.opcode.store_width().expect("opcode is a store");
                ExecOutcome {
                    result: None,
                    mem_addr: Some(self.effective_address(src1)),
                    mem_width: Some(width),
                    store_value: Some(src2 & width.mask()),
                    taken: None,
                    next_pc: fallthrough,
                }
            }
            Opcode::Branch(cond) => {
                let taken = cond.taken(src1, src2);
                ExecOutcome {
                    result: None,
                    mem_addr: None,
                    mem_width: None,
                    store_value: None,
                    taken: Some(taken),
                    next_pc: if taken { self.target } else { fallthrough },
                }
            }
            Opcode::Jump => ExecOutcome {
                result: None,
                mem_addr: None,
                mem_width: None,
                store_value: None,
                taken: Some(true),
                next_pc: self.target,
            },
        }
    }

    /// Source registers of this instruction, in operand order.
    pub fn sources(&self) -> impl Iterator<Item = ArchReg> + '_ {
        self.src1.into_iter().chain(self.src2)
    }
}

impl fmt::Display for StaticInst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.opcode)?;
        if let Some(d) = self.dest {
            write!(f, " {d}")?;
        }
        if let Some(s) = self.src1 {
            write!(f, " {s}")?;
        }
        if let Some(s) = self.src2 {
            write!(f, " {s}")?;
        }
        if self.imm != 0 {
            write!(f, " #{}", self.imm)?;
        }
        if self.opcode.is_control() {
            write!(f, " -> {}", self.target)?;
        }
        Ok(())
    }
}

/// The functional outcome of executing one instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecOutcome {
    /// Value written to the destination register, if any.
    pub result: Option<u64>,
    /// Effective memory address (naturally aligned), for loads and stores.
    pub mem_addr: Option<u64>,
    /// Access width, for loads and stores.
    pub mem_width: Option<MemWidth>,
    /// Value written to memory (truncated to `mem_width`), for stores.
    pub store_value: Option<u64>,
    /// Branch direction, for control instructions.
    pub taken: Option<bool>,
    /// Program counter of the next instruction on the executed path.
    pub next_pc: u32,
}

impl ExecOutcome {
    fn plain(result: Option<u64>, next_pc: u32) -> Self {
        ExecOutcome {
            result,
            mem_addr: None,
            mem_width: None,
            store_value: None,
            taken: None,
            next_pc,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu_ops_apply() {
        assert_eq!(AluOp::Add.apply(3, 4), 7);
        assert_eq!(AluOp::Sub.apply(3, 4), 3u64.wrapping_sub(4));
        assert_eq!(AluOp::And.apply(0b1100, 0b1010), 0b1000);
        assert_eq!(AluOp::Or.apply(0b1100, 0b1010), 0b1110);
        assert_eq!(AluOp::Xor.apply(0b1100, 0b1010), 0b0110);
        assert_eq!(AluOp::Shl.apply(1, 4), 16);
        assert_eq!(AluOp::Shr.apply(16, 4), 1);
        // Shift amounts are masked to 6 bits.
        assert_eq!(AluOp::Shl.apply(1, 64), 1);
        // Arithmetic shift replicates the sign bit; logical does not.
        assert_eq!(AluOp::Sra.apply((-16i64) as u64, 2), (-4i64) as u64);
        assert_eq!(AluOp::Sra.apply(16, 2), 4);
        assert_ne!(AluOp::Shr.apply((-16i64) as u64, 2), (-4i64) as u64);
    }

    #[test]
    fn mem_width_geometry() {
        assert_eq!(MemWidth::B.bytes(), 1);
        assert_eq!(MemWidth::H.bytes(), 2);
        assert_eq!(MemWidth::W.bytes(), 4);
        assert_eq!(MemWidth::D.bytes(), 8);
        assert_eq!(MemWidth::B.mask(), 0xFF);
        assert_eq!(MemWidth::W.mask(), 0xFFFF_FFFF);
        assert_eq!(MemWidth::D.mask(), u64::MAX);
        assert_eq!(MemWidth::B.align(0x1003), 0x1003);
        assert_eq!(MemWidth::H.align(0x1003), 0x1002);
        assert_eq!(MemWidth::W.align(0x1007), 0x1004);
        assert_eq!(MemWidth::D.align(0x1007), 0x1000);
    }

    #[test]
    fn byte_range_helpers() {
        assert!(range_contains(0x100, 8, 0x103, 2));
        assert!(range_contains(0x100, 8, 0x100, 8));
        assert!(!range_contains(0x100, 8, 0x106, 4)); // crosses the end
        assert!(!range_contains(0x103, 1, 0x100, 8)); // narrower store
        assert!(ranges_overlap(0x100, 8, 0x106, 4));
        assert!(ranges_overlap(0x103, 1, 0x100, 8));
        assert!(!ranges_overlap(0x100, 8, 0x108, 1));
        // Wrap-safe at the top of the address space.
        let top = u64::MAX - 7;
        assert!(range_contains(top, 8, top, 8));
        assert!(!ranges_overlap(0, 8, top, 8));
        // Extraction is little-endian.
        assert_eq!(
            extract_forwarded_bytes(0x100, 0x1122_3344_5566_7788, 0x103, 2),
            0x4455
        );
        assert_eq!(
            extract_forwarded_bytes(0x100, 0x1122_3344_5566_7788, 0x100, 8),
            0x1122_3344_5566_7788
        );
    }

    #[test]
    fn mem_access_extension() {
        let lb = MemAccess::signed(MemWidth::B);
        let lbu = MemAccess::unsigned(MemWidth::B);
        assert_eq!(lb.extend(0x80), 0xFFFF_FFFF_FFFF_FF80);
        assert_eq!(lbu.extend(0x80), 0x80);
        assert_eq!(lb.extend(0x7F), 0x7F);
        let lh = MemAccess::signed(MemWidth::H);
        assert_eq!(lh.extend(0x8000), 0xFFFF_FFFF_FFFF_8000);
        let lw = MemAccess::signed(MemWidth::W);
        assert_eq!(lw.extend(0x8000_0000), 0xFFFF_FFFF_8000_0000);
        let lwu = MemAccess::unsigned(MemWidth::W);
        assert_eq!(lwu.extend(0x8000_0000), 0x8000_0000);
        assert_eq!(MemAccess::D.extend(u64::MAX), u64::MAX);
    }

    #[test]
    fn sub_word_load_extends_and_store_truncates() {
        let lb = StaticInst::load_width(
            ArchReg::int(1),
            ArchReg::int(2),
            0,
            MemAccess::signed(MemWidth::B),
        );
        let out = lb.execute(0, 0x1000, 0, Some(0xFE));
        assert_eq!(out.result, Some((-2i64) as u64));

        let sb = StaticInst::store_width(ArchReg::int(3), ArchReg::int(2), 0, MemWidth::B);
        let out = sb.execute(0, 0x1000, 0xABCD, None);
        assert_eq!(out.store_value, Some(0xCD));
        assert_eq!(out.mem_addr, Some(0x1000));
    }

    #[test]
    fn effective_addresses_are_naturally_aligned() {
        let ld = StaticInst::load(ArchReg::int(1), ArchReg::int(2), 3);
        assert_eq!(ld.effective_address(0x1004), 0x1000);
        let lb = StaticInst::load_width(
            ArchReg::int(1),
            ArchReg::int(2),
            3,
            MemAccess::unsigned(MemWidth::B),
        );
        assert_eq!(lb.effective_address(0x1004), 0x1007);
        let lh = StaticInst::load_width(
            ArchReg::int(1),
            ArchReg::int(2),
            0,
            MemAccess::unsigned(MemWidth::H),
        );
        assert_eq!(lh.effective_address(0x1003), 0x1002);
    }

    #[test]
    fn branch_conditions() {
        assert!(BranchCond::Eq.taken(5, 5));
        assert!(!BranchCond::Eq.taken(5, 6));
        assert!(BranchCond::Ne.taken(5, 6));
        assert!(BranchCond::Lt.taken(5, 6));
        assert!(BranchCond::Ge.taken(6, 6));
    }

    #[test]
    fn load_execute_computes_address_and_result() {
        let ld = StaticInst::load(ArchReg::int(1), ArchReg::int(2), 16);
        let out = ld.execute(10, 0x1000, 0, Some(42));
        assert_eq!(out.mem_addr, Some(0x1010));
        assert_eq!(out.result, Some(42));
        assert_eq!(out.next_pc, 11);
    }

    #[test]
    fn store_execute_reports_value_and_address() {
        let st = StaticInst::store(ArchReg::int(3), ArchReg::int(2), 8);
        let out = st.execute(0, 0x2000, 99, None);
        assert_eq!(out.mem_addr, Some(0x2008));
        assert_eq!(out.store_value, Some(99));
        assert_eq!(out.result, None);
    }

    #[test]
    fn branch_taken_and_not_taken_paths() {
        let b = StaticInst::branch(BranchCond::Lt, ArchReg::int(1), ArchReg::int(2), 3);
        let taken = b.execute(7, 1, 2, None);
        assert_eq!(taken.taken, Some(true));
        assert_eq!(taken.next_pc, 3);
        let not = b.execute(7, 2, 2, None);
        assert_eq!(not.taken, Some(false));
        assert_eq!(not.next_pc, 8);
    }

    #[test]
    fn jump_always_redirects() {
        let j = StaticInst::jump(0);
        let out = j.execute(5, 0, 0, None);
        assert_eq!(out.taken, Some(true));
        assert_eq!(out.next_pc, 0);
    }

    #[test]
    fn imm_operand_used_when_src2_absent() {
        let add = StaticInst::int_alu_imm(AluOp::Add, ArchReg::int(1), ArchReg::int(1), 64);
        let out = add.execute(0, 100, 0, None);
        assert_eq!(out.result, Some(164));
    }

    #[test]
    fn opcode_classification() {
        assert!(Opcode::Load(MemAccess::D).is_load());
        assert!(Opcode::FpStore.is_store());
        assert!(Opcode::Store(MemWidth::D).is_mem());
        assert!(Opcode::Jump.is_control());
        assert!(!Opcode::Jump.is_cond_branch());
        assert!(Opcode::Branch(BranchCond::Eq).is_cond_branch());
        assert_eq!(Opcode::Load(MemAccess::D).dest_class(), Some(RegClass::Int));
        assert_eq!(Opcode::FpLoad.dest_class(), Some(RegClass::Fp));
        assert_eq!(Opcode::Store(MemWidth::D).dest_class(), None);
        assert_eq!(Opcode::FpDiv.class(), OpClass::FpDiv);
        assert_eq!(
            Opcode::Load(MemAccess::signed(MemWidth::B)).mem_width(),
            Some(MemWidth::B)
        );
        assert_eq!(Opcode::Store(MemWidth::H).mem_width(), Some(MemWidth::H));
        assert_eq!(Opcode::FpLoad.load_access(), Some(MemAccess::D));
        assert_eq!(Opcode::FpStore.store_width(), Some(MemWidth::D));
        assert_eq!(Opcode::Nop.mem_width(), None);
    }

    #[test]
    fn display_is_nonempty() {
        let ld = StaticInst::load(ArchReg::int(1), ArchReg::int(2), 16);
        assert!(!ld.to_string().is_empty());
        assert!(!StaticInst::jump(4).to_string().is_empty());
    }

    #[test]
    fn fp_div_by_zero_saturates() {
        let d = StaticInst::fp_div(ArchReg::fp(0), ArchReg::fp(1), ArchReg::fp(2));
        let out = d.execute(0, 10, 0, None);
        assert_eq!(out.result, Some(u64::MAX));
    }
}
