//! The synthetic micro-op ISA executed by the simulator.
//!
//! The ISA is a small load/store RISC: integer and floating-point ALU
//! operations, loads and stores with base+displacement addressing,
//! conditional branches and unconditional jumps. It is deliberately simple —
//! the paper's mechanisms (runahead execution, stalling-slice tracking,
//! register reclamation) depend only on *data-flow between registers and
//! memory*, not on a rich instruction set — but it is fully executable: every
//! micro-op has defined functional semantics so the out-of-order core and the
//! runahead engines compute real addresses and real values.

use crate::reg::{ArchReg, RegClass};
use std::fmt;

/// Integer/floating-point ALU operation kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Logical shift left (by `src2 & 63` or `imm & 63`).
    Shl,
    /// Logical shift right.
    Shr,
}

impl AluOp {
    /// Applies the ALU operation to two 64-bit operands.
    pub fn apply(&self, a: u64, b: u64) -> u64 {
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Shl => a.wrapping_shl((b & 63) as u32),
            AluOp::Shr => a.wrapping_shr((b & 63) as u32),
        }
    }
}

/// Conditions for conditional branches (comparing `src1` against `src2`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchCond {
    /// Taken if `src1 == src2`.
    Eq,
    /// Taken if `src1 != src2`.
    Ne,
    /// Taken if `src1 < src2` (unsigned).
    Lt,
    /// Taken if `src1 >= src2` (unsigned).
    Ge,
}

impl BranchCond {
    /// Evaluates the branch condition on two operand values.
    pub fn taken(&self, a: u64, b: u64) -> bool {
        match self {
            BranchCond::Eq => a == b,
            BranchCond::Ne => a != b,
            BranchCond::Lt => a < b,
            BranchCond::Ge => a >= b,
        }
    }
}

/// Micro-op opcodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Opcode {
    /// No operation.
    Nop,
    /// Integer ALU operation: `dest = src1 op (src2 | imm)`.
    IntAlu(AluOp),
    /// Integer multiply: `dest = src1 * (src2 | imm)`.
    IntMul,
    /// Floating-point ALU operation (operates on raw 64-bit payloads).
    FpAlu(AluOp),
    /// Floating-point multiply.
    FpMul,
    /// Floating-point divide (long latency).
    FpDiv,
    /// Load immediate: `dest = imm`.
    LoadImm,
    /// Integer load: `dest = mem[src1 + imm]`.
    Load,
    /// Floating-point load: `dest = mem[src1 + imm]`.
    FpLoad,
    /// Integer store: `mem[src1 + imm] = src2`.
    Store,
    /// Floating-point store: `mem[src1 + imm] = src2`.
    FpStore,
    /// Conditional branch to `target` when the condition holds on `(src1, src2)`.
    Branch(BranchCond),
    /// Unconditional jump to `target`.
    Jump,
}

/// Functional-unit classes used for scheduling and latency selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// No-op (consumes a pipeline slot only).
    Nop,
    /// Single-cycle integer ALU.
    IntAlu,
    /// Integer multiplier.
    IntMul,
    /// Floating-point adder.
    FpAlu,
    /// Floating-point multiplier.
    FpMul,
    /// Floating-point divider.
    FpDiv,
    /// Load port (address generation + cache access).
    Load,
    /// Store port.
    Store,
    /// Branch unit.
    Branch,
}

impl OpClass {
    /// Number of functional-unit classes (the length of [`OpClass::ALL`]).
    pub const COUNT: usize = 9;

    /// All functional-unit classes, in discriminant order (so
    /// `ALL[c.index()] == c`).
    pub const ALL: [OpClass; OpClass::COUNT] = [
        OpClass::Nop,
        OpClass::IntAlu,
        OpClass::IntMul,
        OpClass::FpAlu,
        OpClass::FpMul,
        OpClass::FpDiv,
        OpClass::Load,
        OpClass::Store,
        OpClass::Branch,
    ];

    /// Dense index of this class in `0..OpClass::COUNT`, usable for flat
    /// per-class tables (issue ports, ready queues) without hashing.
    pub fn index(self) -> usize {
        self as usize
    }
}

impl Opcode {
    /// The functional-unit class this opcode executes on.
    pub fn class(&self) -> OpClass {
        match self {
            Opcode::Nop => OpClass::Nop,
            Opcode::IntAlu(_) | Opcode::LoadImm => OpClass::IntAlu,
            Opcode::IntMul => OpClass::IntMul,
            Opcode::FpAlu(_) => OpClass::FpAlu,
            Opcode::FpMul => OpClass::FpMul,
            Opcode::FpDiv => OpClass::FpDiv,
            Opcode::Load | Opcode::FpLoad => OpClass::Load,
            Opcode::Store | Opcode::FpStore => OpClass::Store,
            Opcode::Branch(_) | Opcode::Jump => OpClass::Branch,
        }
    }

    /// `true` for loads (integer or floating point).
    pub fn is_load(&self) -> bool {
        matches!(self, Opcode::Load | Opcode::FpLoad)
    }

    /// `true` for stores (integer or floating point).
    pub fn is_store(&self) -> bool {
        matches!(self, Opcode::Store | Opcode::FpStore)
    }

    /// `true` for any memory operation.
    pub fn is_mem(&self) -> bool {
        self.is_load() || self.is_store()
    }

    /// `true` for conditional branches and unconditional jumps.
    pub fn is_control(&self) -> bool {
        matches!(self, Opcode::Branch(_) | Opcode::Jump)
    }

    /// `true` only for conditional branches.
    pub fn is_cond_branch(&self) -> bool {
        matches!(self, Opcode::Branch(_))
    }

    /// The register class of the destination this opcode writes, if any.
    pub fn dest_class(&self) -> Option<RegClass> {
        match self {
            Opcode::IntAlu(_) | Opcode::IntMul | Opcode::LoadImm | Opcode::Load => {
                Some(RegClass::Int)
            }
            Opcode::FpAlu(_) | Opcode::FpMul | Opcode::FpDiv | Opcode::FpLoad => Some(RegClass::Fp),
            _ => None,
        }
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Opcode::Nop => write!(f, "nop"),
            Opcode::IntAlu(op) => write!(f, "ialu.{op:?}"),
            Opcode::IntMul => write!(f, "imul"),
            Opcode::FpAlu(op) => write!(f, "falu.{op:?}"),
            Opcode::FpMul => write!(f, "fmul"),
            Opcode::FpDiv => write!(f, "fdiv"),
            Opcode::LoadImm => write!(f, "li"),
            Opcode::Load => write!(f, "ld"),
            Opcode::FpLoad => write!(f, "fld"),
            Opcode::Store => write!(f, "st"),
            Opcode::FpStore => write!(f, "fst"),
            Opcode::Branch(c) => write!(f, "b.{c:?}"),
            Opcode::Jump => write!(f, "j"),
        }
    }
}

/// A static instruction: one entry of a [`crate::program::Program`].
///
/// The program counter of an instruction is its index in the program; branch
/// targets are absolute indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StaticInst {
    /// Operation performed by this instruction.
    pub opcode: Opcode,
    /// Destination architectural register, if the opcode writes one.
    pub dest: Option<ArchReg>,
    /// First source register (base address for memory operations).
    pub src1: Option<ArchReg>,
    /// Second source register (stored value for stores, comparison operand
    /// for branches, second ALU operand when present).
    pub src2: Option<ArchReg>,
    /// Immediate operand (displacement for memory operations, literal for
    /// `LoadImm`, second ALU operand when `src2` is absent).
    pub imm: i64,
    /// Absolute branch/jump target (ignored for non-control instructions).
    pub target: u32,
}

impl StaticInst {
    /// A no-op.
    pub fn nop() -> Self {
        StaticInst {
            opcode: Opcode::Nop,
            dest: None,
            src1: None,
            src2: None,
            imm: 0,
            target: 0,
        }
    }

    /// Integer ALU op with a register second operand: `dest = src1 op src2`.
    pub fn int_alu(op: AluOp, dest: ArchReg, src1: ArchReg, src2: ArchReg) -> Self {
        StaticInst {
            opcode: Opcode::IntAlu(op),
            dest: Some(dest),
            src1: Some(src1),
            src2: Some(src2),
            imm: 0,
            target: 0,
        }
    }

    /// Integer ALU op with an immediate second operand: `dest = src1 op imm`.
    pub fn int_alu_imm(op: AluOp, dest: ArchReg, src1: ArchReg, imm: i64) -> Self {
        StaticInst {
            opcode: Opcode::IntAlu(op),
            dest: Some(dest),
            src1: Some(src1),
            src2: None,
            imm,
            target: 0,
        }
    }

    /// Integer multiply: `dest = src1 * src2`.
    pub fn int_mul(dest: ArchReg, src1: ArchReg, src2: ArchReg) -> Self {
        StaticInst {
            opcode: Opcode::IntMul,
            dest: Some(dest),
            src1: Some(src1),
            src2: Some(src2),
            imm: 0,
            target: 0,
        }
    }

    /// Integer multiply by an immediate: `dest = src1 * imm`.
    pub fn int_mul_imm(dest: ArchReg, src1: ArchReg, imm: i64) -> Self {
        StaticInst {
            opcode: Opcode::IntMul,
            dest: Some(dest),
            src1: Some(src1),
            src2: None,
            imm,
            target: 0,
        }
    }

    /// Floating-point ALU op: `dest = src1 op src2`.
    pub fn fp_alu(op: AluOp, dest: ArchReg, src1: ArchReg, src2: ArchReg) -> Self {
        StaticInst {
            opcode: Opcode::FpAlu(op),
            dest: Some(dest),
            src1: Some(src1),
            src2: Some(src2),
            imm: 0,
            target: 0,
        }
    }

    /// Floating-point multiply: `dest = src1 * src2`.
    pub fn fp_mul(dest: ArchReg, src1: ArchReg, src2: ArchReg) -> Self {
        StaticInst {
            opcode: Opcode::FpMul,
            dest: Some(dest),
            src1: Some(src1),
            src2: Some(src2),
            imm: 0,
            target: 0,
        }
    }

    /// Floating-point divide: `dest = src1 / src2`.
    pub fn fp_div(dest: ArchReg, src1: ArchReg, src2: ArchReg) -> Self {
        StaticInst {
            opcode: Opcode::FpDiv,
            dest: Some(dest),
            src1: Some(src1),
            src2: Some(src2),
            imm: 0,
            target: 0,
        }
    }

    /// Load immediate: `dest = imm`.
    pub fn load_imm(dest: ArchReg, imm: i64) -> Self {
        StaticInst {
            opcode: Opcode::LoadImm,
            dest: Some(dest),
            src1: None,
            src2: None,
            imm,
            target: 0,
        }
    }

    /// Integer load: `dest = mem[base + offset]`.
    pub fn load(dest: ArchReg, base: ArchReg, offset: i64) -> Self {
        StaticInst {
            opcode: Opcode::Load,
            dest: Some(dest),
            src1: Some(base),
            src2: None,
            imm: offset,
            target: 0,
        }
    }

    /// Floating-point load: `dest = mem[base + offset]`.
    pub fn fp_load(dest: ArchReg, base: ArchReg, offset: i64) -> Self {
        StaticInst {
            opcode: Opcode::FpLoad,
            dest: Some(dest),
            src1: Some(base),
            src2: None,
            imm: offset,
            target: 0,
        }
    }

    /// Integer store: `mem[base + offset] = value`.
    pub fn store(value: ArchReg, base: ArchReg, offset: i64) -> Self {
        StaticInst {
            opcode: Opcode::Store,
            dest: None,
            src1: Some(base),
            src2: Some(value),
            imm: offset,
            target: 0,
        }
    }

    /// Floating-point store: `mem[base + offset] = value`.
    pub fn fp_store(value: ArchReg, base: ArchReg, offset: i64) -> Self {
        StaticInst {
            opcode: Opcode::FpStore,
            dest: None,
            src1: Some(base),
            src2: Some(value),
            imm: offset,
            target: 0,
        }
    }

    /// Conditional branch: `if cond(src1, src2) goto target`.
    pub fn branch(cond: BranchCond, src1: ArchReg, src2: ArchReg, target: u32) -> Self {
        StaticInst {
            opcode: Opcode::Branch(cond),
            dest: None,
            src1: Some(src1),
            src2: Some(src2),
            imm: 0,
            target,
        }
    }

    /// Unconditional jump to `target`.
    pub fn jump(target: u32) -> Self {
        StaticInst {
            opcode: Opcode::Jump,
            dest: None,
            src1: None,
            src2: None,
            imm: 0,
            target,
        }
    }

    /// Effective memory address for loads/stores, given the resolved base
    /// register value.
    pub fn effective_address(&self, base: u64) -> u64 {
        base.wrapping_add(self.imm as u64)
    }

    /// Computes the functional result of this instruction.
    ///
    /// `src1`/`src2` are the resolved source operand values (0 when the
    /// operand is absent); `loaded` is the value read from memory for loads.
    /// Returns the executed outcome: the destination value (if the opcode
    /// writes a register), the effective memory address (for memory
    /// operations), the value to store (for stores), the branch direction and
    /// the next program counter.
    pub fn execute(&self, pc: u32, src1: u64, src2: u64, loaded: Option<u64>) -> ExecOutcome {
        let fallthrough = pc.wrapping_add(1);
        match self.opcode {
            Opcode::Nop => ExecOutcome::plain(None, fallthrough),
            Opcode::IntAlu(op) | Opcode::FpAlu(op) => {
                let b = if self.src2.is_some() {
                    src2
                } else {
                    self.imm as u64
                };
                ExecOutcome::plain(Some(op.apply(src1, b)), fallthrough)
            }
            Opcode::IntMul | Opcode::FpMul => {
                let b = if self.src2.is_some() {
                    src2
                } else {
                    self.imm as u64
                };
                ExecOutcome::plain(Some(src1.wrapping_mul(b)), fallthrough)
            }
            Opcode::FpDiv => {
                let b = if self.src2.is_some() {
                    src2
                } else {
                    self.imm as u64
                };
                let v = if b == 0 {
                    u64::MAX
                } else {
                    src1.wrapping_div(b)
                };
                ExecOutcome::plain(Some(v), fallthrough)
            }
            Opcode::LoadImm => ExecOutcome::plain(Some(self.imm as u64), fallthrough),
            Opcode::Load | Opcode::FpLoad => ExecOutcome {
                result: loaded,
                mem_addr: Some(self.effective_address(src1)),
                store_value: None,
                taken: None,
                next_pc: fallthrough,
            },
            Opcode::Store | Opcode::FpStore => ExecOutcome {
                result: None,
                mem_addr: Some(self.effective_address(src1)),
                store_value: Some(src2),
                taken: None,
                next_pc: fallthrough,
            },
            Opcode::Branch(cond) => {
                let taken = cond.taken(src1, src2);
                ExecOutcome {
                    result: None,
                    mem_addr: None,
                    store_value: None,
                    taken: Some(taken),
                    next_pc: if taken { self.target } else { fallthrough },
                }
            }
            Opcode::Jump => ExecOutcome {
                result: None,
                mem_addr: None,
                store_value: None,
                taken: Some(true),
                next_pc: self.target,
            },
        }
    }

    /// Source registers of this instruction, in operand order.
    pub fn sources(&self) -> impl Iterator<Item = ArchReg> + '_ {
        self.src1.into_iter().chain(self.src2)
    }
}

impl fmt::Display for StaticInst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.opcode)?;
        if let Some(d) = self.dest {
            write!(f, " {d}")?;
        }
        if let Some(s) = self.src1 {
            write!(f, " {s}")?;
        }
        if let Some(s) = self.src2 {
            write!(f, " {s}")?;
        }
        if self.imm != 0 {
            write!(f, " #{}", self.imm)?;
        }
        if self.opcode.is_control() {
            write!(f, " -> {}", self.target)?;
        }
        Ok(())
    }
}

/// The functional outcome of executing one instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecOutcome {
    /// Value written to the destination register, if any.
    pub result: Option<u64>,
    /// Effective memory address, for loads and stores.
    pub mem_addr: Option<u64>,
    /// Value written to memory, for stores.
    pub store_value: Option<u64>,
    /// Branch direction, for control instructions.
    pub taken: Option<bool>,
    /// Program counter of the next instruction on the executed path.
    pub next_pc: u32,
}

impl ExecOutcome {
    fn plain(result: Option<u64>, next_pc: u32) -> Self {
        ExecOutcome {
            result,
            mem_addr: None,
            store_value: None,
            taken: None,
            next_pc,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu_ops_apply() {
        assert_eq!(AluOp::Add.apply(3, 4), 7);
        assert_eq!(AluOp::Sub.apply(3, 4), 3u64.wrapping_sub(4));
        assert_eq!(AluOp::And.apply(0b1100, 0b1010), 0b1000);
        assert_eq!(AluOp::Or.apply(0b1100, 0b1010), 0b1110);
        assert_eq!(AluOp::Xor.apply(0b1100, 0b1010), 0b0110);
        assert_eq!(AluOp::Shl.apply(1, 4), 16);
        assert_eq!(AluOp::Shr.apply(16, 4), 1);
        // Shift amounts are masked to 6 bits.
        assert_eq!(AluOp::Shl.apply(1, 64), 1);
    }

    #[test]
    fn branch_conditions() {
        assert!(BranchCond::Eq.taken(5, 5));
        assert!(!BranchCond::Eq.taken(5, 6));
        assert!(BranchCond::Ne.taken(5, 6));
        assert!(BranchCond::Lt.taken(5, 6));
        assert!(BranchCond::Ge.taken(6, 6));
    }

    #[test]
    fn load_execute_computes_address_and_result() {
        let ld = StaticInst::load(ArchReg::int(1), ArchReg::int(2), 16);
        let out = ld.execute(10, 0x1000, 0, Some(42));
        assert_eq!(out.mem_addr, Some(0x1010));
        assert_eq!(out.result, Some(42));
        assert_eq!(out.next_pc, 11);
    }

    #[test]
    fn store_execute_reports_value_and_address() {
        let st = StaticInst::store(ArchReg::int(3), ArchReg::int(2), 8);
        let out = st.execute(0, 0x2000, 99, None);
        assert_eq!(out.mem_addr, Some(0x2008));
        assert_eq!(out.store_value, Some(99));
        assert_eq!(out.result, None);
    }

    #[test]
    fn branch_taken_and_not_taken_paths() {
        let b = StaticInst::branch(BranchCond::Lt, ArchReg::int(1), ArchReg::int(2), 3);
        let taken = b.execute(7, 1, 2, None);
        assert_eq!(taken.taken, Some(true));
        assert_eq!(taken.next_pc, 3);
        let not = b.execute(7, 2, 2, None);
        assert_eq!(not.taken, Some(false));
        assert_eq!(not.next_pc, 8);
    }

    #[test]
    fn jump_always_redirects() {
        let j = StaticInst::jump(0);
        let out = j.execute(5, 0, 0, None);
        assert_eq!(out.taken, Some(true));
        assert_eq!(out.next_pc, 0);
    }

    #[test]
    fn imm_operand_used_when_src2_absent() {
        let add = StaticInst::int_alu_imm(AluOp::Add, ArchReg::int(1), ArchReg::int(1), 64);
        let out = add.execute(0, 100, 0, None);
        assert_eq!(out.result, Some(164));
    }

    #[test]
    fn opcode_classification() {
        assert!(Opcode::Load.is_load());
        assert!(Opcode::FpStore.is_store());
        assert!(Opcode::Store.is_mem());
        assert!(Opcode::Jump.is_control());
        assert!(!Opcode::Jump.is_cond_branch());
        assert!(Opcode::Branch(BranchCond::Eq).is_cond_branch());
        assert_eq!(Opcode::Load.dest_class(), Some(RegClass::Int));
        assert_eq!(Opcode::FpLoad.dest_class(), Some(RegClass::Fp));
        assert_eq!(Opcode::Store.dest_class(), None);
        assert_eq!(Opcode::FpDiv.class(), OpClass::FpDiv);
    }

    #[test]
    fn display_is_nonempty() {
        let ld = StaticInst::load(ArchReg::int(1), ArchReg::int(2), 16);
        assert!(!ld.to_string().is_empty());
        assert!(!StaticInst::jump(4).to_string().is_empty());
    }

    #[test]
    fn fp_div_by_zero_saturates() {
        let d = StaticInst::fp_div(ArchReg::fp(0), ArchReg::fp(1), ArchReg::fp(2));
        let out = d.execute(0, 10, 0, None);
        assert_eq!(out.result, Some(u64::MAX));
    }
}
