//! A small deterministic pseudo-random number generator.
//!
//! The workspace builds without crates.io access, so this module stands in
//! for `rand::rngs::SmallRng` everywhere the workloads and the randomized
//! tests need reproducible pseudo-randomness. The generator is
//! xoshiro256**, seeded from a single `u64` through SplitMix64 — the same
//! construction `rand`'s `SmallRng` has used — so streams are well mixed
//! even for adjacent seeds.
//!
//! Determinism is load-bearing: workload memory images are built from a
//! seed, and the parallel/serial equivalence tests in `pre-sim` rely on a
//! given seed always producing the same program.
//!
//! # Example
//!
//! ```
//! use pre_model::rng::SmallRng;
//!
//! let mut a = SmallRng::seed_from_u64(7);
//! let mut b = SmallRng::seed_from_u64(7);
//! assert_eq!(a.next_u64(), b.next_u64());
//! assert!(a.gen_range_usize(0..10) < 10);
//! ```

use std::ops::{Range, RangeInclusive};

/// Deterministic xoshiro256** generator seeded from a `u64`.
#[derive(Debug, Clone)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SmallRng {
    /// Creates a generator whose stream is fully determined by `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion of the seed into the 256-bit state, as
        // recommended by the xoshiro authors (never all-zero).
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        SmallRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform value in `[0, bound)`. `bound` must be non-zero.
    pub fn gen_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_below bound must be non-zero");
        // Debiased multiply-shift (Lemire); the retry loop is vanishingly
        // rare for the small bounds the workloads use.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let x = self.next_u64();
            let hi = ((x as u128 * bound as u128) >> 64) as u64;
            let lo = (x as u128 * bound as u128) as u64;
            if lo >= threshold {
                return hi;
            }
        }
    }

    /// A uniform `usize` in the half-open `range`.
    pub fn gen_range_usize(&mut self, range: Range<usize>) -> usize {
        assert!(range.start < range.end, "empty range");
        range.start + self.gen_below((range.end - range.start) as u64) as usize
    }

    /// A uniform `usize` in the inclusive `range`.
    pub fn gen_range_inclusive(&mut self, range: RangeInclusive<usize>) -> usize {
        let (lo, hi) = (*range.start(), *range.end());
        assert!(lo <= hi, "empty inclusive range");
        lo + self.gen_below((hi - lo) as u64 + 1) as usize
    }

    /// A uniform `u64` in the half-open `range`.
    pub fn gen_range_u64(&mut self, range: Range<u64>) -> u64 {
        assert!(range.start < range.end, "empty range");
        range.start + self.gen_below(range.end - range.start)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }

    /// Shuffles `slice` uniformly in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_range_inclusive(0..=i);
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(1);
        let mut c = SmallRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds_and_cover() {
        let mut rng = SmallRng::seed_from_u64(99);
        let mut seen = [false; 8];
        for _ in 0..512 {
            seen[rng.gen_range_usize(0..8)] = true;
            assert!(rng.gen_range_inclusive(3..=5) >= 3);
            assert!(rng.gen_range_inclusive(3..=5) <= 5);
            assert!(rng.gen_range_u64(10..20) >= 10);
            assert!(rng.gen_range_u64(10..20) < 20);
            // A degenerate inclusive range has a single value.
            assert_eq!(rng.gen_range_inclusive(4..=4), 4);
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn shuffle_is_a_permutation_and_seed_dependent() {
        let mut a = SmallRng::seed_from_u64(5);
        let mut b = SmallRng::seed_from_u64(6);
        let mut xs: Vec<u32> = (0..64).collect();
        let mut ys = xs.clone();
        a.shuffle(&mut xs);
        b.shuffle(&mut ys);
        assert_ne!(xs, ys, "different seeds should shuffle differently");
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<u32>>());
        // Single-element and empty slices are fine.
        a.shuffle(&mut [] as &mut [u32]);
        a.shuffle(&mut [1u32]);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(7);
        let hits = (0..4096).filter(|_| rng.gen_bool(0.25)).count();
        assert!((800..1250).contains(&hits), "hits = {hits}");
        assert!(!(0..64).any(|_| rng.gen_bool(0.0)));
        assert!((0..64).all(|_| rng.gen_bool(1.0)));
    }
}
