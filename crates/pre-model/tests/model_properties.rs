//! Property-based tests for the model crate: functional memory, ALU
//! semantics, the reference interpreter and the statistics helpers.

use pre_model::isa::{AluOp, BranchCond, StaticInst};
use pre_model::mem::FuncMem;
use pre_model::program::{Interpreter, Program};
use pre_model::reg::ArchReg;
use pre_model::stats::Histogram;
use proptest::prelude::*;

proptest! {
    /// Functional memory behaves like a map from word-aligned addresses to
    /// the last value stored there.
    #[test]
    fn funcmem_matches_a_reference_map(ops in proptest::collection::vec(
        (0u64..4096u64, any::<u64>(), any::<bool>()), 1..200)) {
        let mut mem = FuncMem::new();
        let mut reference = std::collections::HashMap::new();
        for (addr, value, is_store) in ops {
            let word = (addr * 8) & !7;
            if is_store {
                mem.store_u64(word, value);
                reference.insert(word, value);
            } else if let Some(&expected) = reference.get(&word) {
                // The sentinel value is remapped on store; skip comparing it.
                if expected != 0xDEAD_BEEF_DEAD_BEEF {
                    prop_assert_eq!(mem.load_u64(word), expected);
                }
            } else {
                // Unwritten reads are deterministic.
                prop_assert_eq!(mem.load_u64(word), mem.load_u64(word));
            }
        }
        prop_assert!(mem.written_words() as usize <= reference.len());
    }

    /// ALU operations agree with their obvious reference semantics.
    #[test]
    fn alu_ops_match_reference(a in any::<u64>(), b in any::<u64>()) {
        prop_assert_eq!(AluOp::Add.apply(a, b), a.wrapping_add(b));
        prop_assert_eq!(AluOp::Sub.apply(a, b), a.wrapping_sub(b));
        prop_assert_eq!(AluOp::And.apply(a, b), a & b);
        prop_assert_eq!(AluOp::Or.apply(a, b), a | b);
        prop_assert_eq!(AluOp::Xor.apply(a, b), a ^ b);
        prop_assert_eq!(AluOp::Shl.apply(a, b), a.wrapping_shl((b & 63) as u32));
        prop_assert_eq!(AluOp::Shr.apply(a, b), a.wrapping_shr((b & 63) as u32));
    }

    /// Branch conditions partition the input space consistently.
    #[test]
    fn branch_conditions_are_consistent(a in any::<u64>(), b in any::<u64>()) {
        prop_assert_eq!(BranchCond::Eq.taken(a, b), !BranchCond::Ne.taken(a, b));
        prop_assert_eq!(BranchCond::Lt.taken(a, b), !BranchCond::Ge.taken(a, b));
        if a == b {
            prop_assert!(BranchCond::Ge.taken(a, b));
        }
    }

    /// The interpreter is deterministic and its retired-instruction count is
    /// monotone in the step budget.
    #[test]
    fn interpreter_is_deterministic_and_monotone(
        values in proptest::collection::vec(0i64..1000, 2..20),
        budget in 1u64..200,
    ) {
        let mut p = Program::new("prop");
        let acc = ArchReg::int(1);
        let tmp = ArchReg::int(2);
        p.insts.push(StaticInst::load_imm(acc, 0));
        for (i, v) in values.iter().enumerate() {
            p.insts.push(StaticInst::load_imm(tmp, *v));
            let op = if i % 2 == 0 { AluOp::Add } else { AluOp::Xor };
            p.insts.push(StaticInst::int_alu(op, acc, acc, tmp));
        }
        p.validate().unwrap();

        let mut a = Interpreter::new(&p);
        let mut b = Interpreter::new(&p);
        a.run(budget);
        b.run(budget);
        prop_assert_eq!(a.snapshot(), b.snapshot());

        let mut c = Interpreter::new(&p);
        c.run(budget + 5);
        prop_assert!(c.retired() >= a.retired());
    }

    /// Histogram counts always sum to the number of recorded samples and
    /// `fraction_below` is monotone in the threshold.
    #[test]
    fn histogram_invariants(samples in proptest::collection::vec(0u64..2000, 0..300)) {
        let mut h = Histogram::new(&[10, 20, 50, 100, 500]);
        for &s in &samples {
            h.record(s);
        }
        prop_assert_eq!(h.count() as usize, samples.len());
        let total: u64 = h.buckets().map(|(_, c)| c).sum();
        prop_assert_eq!(total as usize, samples.len());
        prop_assert!(h.fraction_below(10) <= h.fraction_below(20));
        prop_assert!(h.fraction_below(20) <= h.fraction_below(500));
        if !samples.is_empty() {
            prop_assert!(h.max() >= samples.iter().copied().max().unwrap());
        }
    }

    /// Program validation accepts every branch target inside the program and
    /// rejects every branch target outside it.
    #[test]
    fn branch_target_validation(target in 0u32..40, len in 1usize..20) {
        let mut p = Program::new("targets");
        for _ in 0..len {
            p.insts.push(StaticInst::nop());
        }
        p.insts.push(StaticInst::jump(target));
        let ok = p.validate().is_ok();
        prop_assert_eq!(ok, (target as usize) < len + 1);
    }
}
