//! Randomized-property tests for the model crate: functional memory, ALU
//! semantics, the reference interpreter and the statistics helpers.
//!
//! Driven by the workspace's deterministic [`pre_model::rng::SmallRng`]
//! instead of proptest (no crates.io access); every case derives from a fixed
//! seed, so failures reproduce exactly.

use pre_model::isa::{AluOp, BranchCond, StaticInst};
use pre_model::mem::FuncMem;
use pre_model::program::{Interpreter, Program};
use pre_model::reg::ArchReg;
use pre_model::rng::SmallRng;
use pre_model::stats::Histogram;

/// Byte-granular functional memory behaves exactly like a naive
/// `BTreeMap<u64, u8>` of written bytes, under mixed-width **overlapping**
/// loads and stores at arbitrary alignments — including reads of bytes that
/// were never written, which must return the deterministic per-byte
/// hash-init value (byte `a % 8` of the hash of `a`'s aligned word, so the
/// reference model can predict it from the first observation of each byte).
#[test]
fn funcmem_byte_granular_matches_reference_model() {
    let mut rng = SmallRng::seed_from_u64(0x40DE_0001);
    // The hash-init value of byte `addr`, learned through an 8-byte aligned
    // read of a fresh memory (the model under test must agree with itself,
    // and all widths must agree with the byte view).
    let init_byte = |addr: u64| -> u8 {
        let probe = FuncMem::new();
        probe.load_bytes(addr, 1) as u8
    };
    for case in 0..48 {
        let ops = rng.gen_range_usize(1..200);
        let mut mem = FuncMem::new();
        let mut reference: std::collections::BTreeMap<u64, u8> = std::collections::BTreeMap::new();
        // A small address window forces heavy overlap between accesses;
        // occasionally straddle a 4 KB page boundary.
        let window_base = if case % 4 == 0 { 4096 - 16 } else { 0x1000 };
        for _ in 0..ops {
            let len = [1u64, 2, 4, 8][rng.gen_range_usize(0..4)];
            let addr = window_base + rng.gen_range_u64(0..96);
            let value = rng.next_u64();
            if rng.gen_bool(0.5) {
                mem.store_bytes(addr, len, value);
                for i in 0..len {
                    reference.insert(addr + i, (value >> (8 * i)) as u8);
                }
            } else {
                let got = mem.load_bytes(addr, len);
                let mut expected = 0u64;
                for i in (0..len).rev() {
                    let byte = reference
                        .get(&(addr + i))
                        .copied()
                        .unwrap_or_else(|| init_byte(addr + i));
                    expected = (expected << 8) | u64::from(byte);
                }
                assert_eq!(
                    got, expected,
                    "case {case}: load_bytes({addr:#x}, {len}) diverged from the reference"
                );
            }
        }
        assert_eq!(mem.written_bytes() as usize, reference.len());
    }
}

/// An aligned 8-byte read of fully unwritten memory reassembles the same
/// word hash the historical word-granular model returned (bit-compatible
/// hash-init), and unwritten reads never allocate pages.
#[test]
fn funcmem_hash_init_is_deterministic_and_allocation_free() {
    let mut rng = SmallRng::seed_from_u64(0x40DE_0007);
    let mem = FuncMem::new();
    for _ in 0..256 {
        let addr = rng.next_u64() & !7;
        let word = mem.load_u64(addr);
        assert_eq!(word, mem.load_u64(addr));
        // The byte view decomposes the word little-endian.
        for i in 0..8 {
            assert_eq!(mem.load_bytes(addr + i, 1), (word >> (8 * i)) & 0xFF);
        }
    }
    assert_eq!(mem.resident_pages(), 0);
    assert_eq!(mem.written_bytes(), 0);
}

/// ALU operations agree with their obvious reference semantics.
#[test]
fn alu_ops_match_reference() {
    let mut rng = SmallRng::seed_from_u64(0x40DE_0002);
    for _case in 0..256 {
        let a = rng.next_u64();
        let b = rng.next_u64();
        assert_eq!(AluOp::Add.apply(a, b), a.wrapping_add(b));
        assert_eq!(AluOp::Sub.apply(a, b), a.wrapping_sub(b));
        assert_eq!(AluOp::And.apply(a, b), a & b);
        assert_eq!(AluOp::Or.apply(a, b), a | b);
        assert_eq!(AluOp::Xor.apply(a, b), a ^ b);
        assert_eq!(AluOp::Shl.apply(a, b), a.wrapping_shl((b & 63) as u32));
        assert_eq!(AluOp::Shr.apply(a, b), a.wrapping_shr((b & 63) as u32));
    }
}

/// Branch conditions partition the input space consistently.
#[test]
fn branch_conditions_are_consistent() {
    let mut rng = SmallRng::seed_from_u64(0x40DE_0003);
    for case in 0..256 {
        // Mix in equal pairs, which uniform sampling would essentially never
        // produce on its own.
        let a = rng.next_u64();
        let b = if case % 8 == 0 { a } else { rng.next_u64() };
        assert_eq!(BranchCond::Eq.taken(a, b), !BranchCond::Ne.taken(a, b));
        assert_eq!(BranchCond::Lt.taken(a, b), !BranchCond::Ge.taken(a, b));
        if a == b {
            assert!(BranchCond::Ge.taken(a, b));
        }
    }
}

/// The interpreter is deterministic and its retired-instruction count is
/// monotone in the step budget.
#[test]
fn interpreter_is_deterministic_and_monotone() {
    let mut rng = SmallRng::seed_from_u64(0x40DE_0004);
    for _case in 0..64 {
        let count = rng.gen_range_usize(2..20);
        let values: Vec<i64> = (0..count)
            .map(|_| rng.gen_range_u64(0..1000) as i64)
            .collect();
        let budget = rng.gen_range_u64(1..200);
        let mut p = Program::new("prop");
        let acc = ArchReg::int(1);
        let tmp = ArchReg::int(2);
        p.insts.push(StaticInst::load_imm(acc, 0));
        for (i, v) in values.iter().enumerate() {
            p.insts.push(StaticInst::load_imm(tmp, *v));
            let op = if i % 2 == 0 { AluOp::Add } else { AluOp::Xor };
            p.insts.push(StaticInst::int_alu(op, acc, acc, tmp));
        }
        p.validate().unwrap();

        let mut a = Interpreter::new(&p);
        let mut b = Interpreter::new(&p);
        a.run(budget);
        b.run(budget);
        assert_eq!(a.snapshot(), b.snapshot());

        let mut c = Interpreter::new(&p);
        c.run(budget + 5);
        assert!(c.retired() >= a.retired());
    }
}

/// Histogram counts always sum to the number of recorded samples and
/// `fraction_below` is monotone in the threshold.
#[test]
fn histogram_invariants() {
    let mut rng = SmallRng::seed_from_u64(0x40DE_0005);
    for _case in 0..64 {
        let len = rng.gen_range_usize(0..300);
        let samples: Vec<u64> = (0..len).map(|_| rng.gen_range_u64(0..2000)).collect();
        let mut h = Histogram::new(&[10, 20, 50, 100, 500]);
        for &s in &samples {
            h.record(s);
        }
        assert_eq!(h.count() as usize, samples.len());
        let total: u64 = h.buckets().map(|(_, c)| c).sum();
        assert_eq!(total as usize, samples.len());
        assert!(h.fraction_below(10) <= h.fraction_below(20));
        assert!(h.fraction_below(20) <= h.fraction_below(500));
        if !samples.is_empty() {
            assert!(h.max() >= samples.iter().copied().max().unwrap());
        }
    }
}

/// Program validation accepts every branch target inside the program and
/// rejects every branch target outside it.
#[test]
fn branch_target_validation() {
    let mut rng = SmallRng::seed_from_u64(0x40DE_0006);
    for _case in 0..128 {
        let target = rng.gen_range_u64(0..40) as u32;
        let len = rng.gen_range_usize(1..20);
        let mut p = Program::new("targets");
        for _ in 0..len {
            p.insts.push(StaticInst::nop());
        }
        p.insts.push(StaticInst::jump(target));
        let ok = p.validate().is_ok();
        assert_eq!(ok, (target as usize) < len + 1);
    }
}
