//! Randomized-property tests for the model crate: functional memory, ALU
//! semantics, the reference interpreter and the statistics helpers.
//!
//! Driven by the workspace's deterministic [`pre_model::rng::SmallRng`]
//! instead of proptest (no crates.io access); every case derives from a fixed
//! seed, so failures reproduce exactly.

use pre_model::isa::{AluOp, BranchCond, StaticInst};
use pre_model::mem::FuncMem;
use pre_model::program::{Interpreter, Program};
use pre_model::reg::ArchReg;
use pre_model::rng::SmallRng;
use pre_model::stats::Histogram;

/// Functional memory behaves like a map from word-aligned addresses to the
/// last value stored there.
#[test]
fn funcmem_matches_a_reference_map() {
    let mut rng = SmallRng::seed_from_u64(0x40DE_0001);
    for _case in 0..64 {
        let len = rng.gen_range_usize(1..200);
        let mut mem = FuncMem::new();
        let mut reference = std::collections::HashMap::new();
        for _ in 0..len {
            let addr = rng.gen_range_u64(0..4096);
            let value = rng.next_u64();
            let is_store = rng.gen_bool(0.5);
            let word = (addr * 8) & !7;
            if is_store {
                mem.store_u64(word, value);
                reference.insert(word, value);
            } else if let Some(&expected) = reference.get(&word) {
                // The sentinel value is remapped on store; skip comparing it.
                if expected != 0xDEAD_BEEF_DEAD_BEEF {
                    assert_eq!(mem.load_u64(word), expected);
                }
            } else {
                // Unwritten reads are deterministic.
                assert_eq!(mem.load_u64(word), mem.load_u64(word));
            }
        }
        assert!(mem.written_words() as usize <= reference.len());
    }
}

/// ALU operations agree with their obvious reference semantics.
#[test]
fn alu_ops_match_reference() {
    let mut rng = SmallRng::seed_from_u64(0x40DE_0002);
    for _case in 0..256 {
        let a = rng.next_u64();
        let b = rng.next_u64();
        assert_eq!(AluOp::Add.apply(a, b), a.wrapping_add(b));
        assert_eq!(AluOp::Sub.apply(a, b), a.wrapping_sub(b));
        assert_eq!(AluOp::And.apply(a, b), a & b);
        assert_eq!(AluOp::Or.apply(a, b), a | b);
        assert_eq!(AluOp::Xor.apply(a, b), a ^ b);
        assert_eq!(AluOp::Shl.apply(a, b), a.wrapping_shl((b & 63) as u32));
        assert_eq!(AluOp::Shr.apply(a, b), a.wrapping_shr((b & 63) as u32));
    }
}

/// Branch conditions partition the input space consistently.
#[test]
fn branch_conditions_are_consistent() {
    let mut rng = SmallRng::seed_from_u64(0x40DE_0003);
    for case in 0..256 {
        // Mix in equal pairs, which uniform sampling would essentially never
        // produce on its own.
        let a = rng.next_u64();
        let b = if case % 8 == 0 { a } else { rng.next_u64() };
        assert_eq!(BranchCond::Eq.taken(a, b), !BranchCond::Ne.taken(a, b));
        assert_eq!(BranchCond::Lt.taken(a, b), !BranchCond::Ge.taken(a, b));
        if a == b {
            assert!(BranchCond::Ge.taken(a, b));
        }
    }
}

/// The interpreter is deterministic and its retired-instruction count is
/// monotone in the step budget.
#[test]
fn interpreter_is_deterministic_and_monotone() {
    let mut rng = SmallRng::seed_from_u64(0x40DE_0004);
    for _case in 0..64 {
        let count = rng.gen_range_usize(2..20);
        let values: Vec<i64> = (0..count)
            .map(|_| rng.gen_range_u64(0..1000) as i64)
            .collect();
        let budget = rng.gen_range_u64(1..200);
        let mut p = Program::new("prop");
        let acc = ArchReg::int(1);
        let tmp = ArchReg::int(2);
        p.insts.push(StaticInst::load_imm(acc, 0));
        for (i, v) in values.iter().enumerate() {
            p.insts.push(StaticInst::load_imm(tmp, *v));
            let op = if i % 2 == 0 { AluOp::Add } else { AluOp::Xor };
            p.insts.push(StaticInst::int_alu(op, acc, acc, tmp));
        }
        p.validate().unwrap();

        let mut a = Interpreter::new(&p);
        let mut b = Interpreter::new(&p);
        a.run(budget);
        b.run(budget);
        assert_eq!(a.snapshot(), b.snapshot());

        let mut c = Interpreter::new(&p);
        c.run(budget + 5);
        assert!(c.retired() >= a.retired());
    }
}

/// Histogram counts always sum to the number of recorded samples and
/// `fraction_below` is monotone in the threshold.
#[test]
fn histogram_invariants() {
    let mut rng = SmallRng::seed_from_u64(0x40DE_0005);
    for _case in 0..64 {
        let len = rng.gen_range_usize(0..300);
        let samples: Vec<u64> = (0..len).map(|_| rng.gen_range_u64(0..2000)).collect();
        let mut h = Histogram::new(&[10, 20, 50, 100, 500]);
        for &s in &samples {
            h.record(s);
        }
        assert_eq!(h.count() as usize, samples.len());
        let total: u64 = h.buckets().map(|(_, c)| c).sum();
        assert_eq!(total as usize, samples.len());
        assert!(h.fraction_below(10) <= h.fraction_below(20));
        assert!(h.fraction_below(20) <= h.fraction_below(500));
        if !samples.is_empty() {
            assert!(h.max() >= samples.iter().copied().max().unwrap());
        }
    }
}

/// Program validation accepts every branch target inside the program and
/// rejects every branch target outside it.
#[test]
fn branch_target_validation() {
    let mut rng = SmallRng::seed_from_u64(0x40DE_0006);
    for _case in 0..128 {
        let target = rng.gen_range_u64(0..40) as u32;
        let len = rng.gen_range_usize(1..20);
        let mut p = Program::new("targets");
        for _ in 0..len {
            p.insts.push(StaticInst::nop());
        }
        p.insts.push(StaticInst::jump(target));
        let ok = p.validate().is_ok();
        assert_eq!(ok, (target as usize) < len + 1);
    }
}
