//! Assemble a RISC-V kernel and simulate it under every technique.
//!
//! Demonstrates the `pre-asm` frontend end to end: an inline RV64I source
//! string is assembled into a `Program`, cross-checked against the
//! reference interpreter, and then run on the out-of-order core under each
//! of the paper's five configurations; the bundled kernel suite gets the
//! same per-technique IPC treatment.
//!
//! Run with: `cargo run --release --example riscv_kernel`

use precise_runahead::asm::{assemble, AsmKernel};
use precise_runahead::core::OooCore;
use precise_runahead::model::config::SimConfig;
use precise_runahead::model::program::Interpreter;
use precise_runahead::model::reg::ArchReg;
use precise_runahead::runahead::Technique;
use precise_runahead::workloads::{Workload, WorkloadParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Assemble a program from source and execute it functionally.
    let program = assemble(
        "dot-product",
        r#"
        # dot product of two 64-element vectors
        main:   la   a1, vec_x
                la   a2, vec_y
                li   a3, 64          # elements
                li   a4, 0           # accumulator
                li   t0, 0           # index
        loop:   slli t1, t0, 3
                add  t2, a1, t1
                ld   t3, 0(t2)
                add  t2, a2, t1
                ld   t4, 0(t2)
                mul  t3, t3, t4
                add  a4, a4, t3
                addi t0, t0, 1
                bltu t0, a3, loop
                la   t5, result
                sd   a4, 0(t5)

        .data
        vec_x:  .fill 64, 3
        vec_y:  .fill 64, 5
        result: .word 0
        "#,
    )?;
    let mut interp = Interpreter::new(&program);
    while interp.step() {}
    println!(
        "dot-product: {} static uops, interpreter result a4 = {} (expected {})",
        program.len(),
        interp.reg(ArchReg::int(14)),
        64 * 3 * 5
    );
    println!();

    // 2. Run the bundled kernel suite under every technique.
    let config = SimConfig::haswell_like();
    let budget_uops = 30_000;
    println!(
        "{:<20} {}",
        "per-technique IPC",
        Technique::ALL
            .map(|t| format!("{:>9}", t.label()))
            .join(" ")
    );
    for kernel in AsmKernel::ALL {
        let workload = Workload::Asm(kernel);
        let program = workload.build(&WorkloadParams::default());
        let mut row = format!("{:<20}", workload.name());
        for technique in Technique::ALL {
            let mut core = OooCore::new(&config, &program, technique)?;
            core.run(budget_uops, 10_000_000);
            row.push_str(&format!(" {:>9.3}", core.stats().ipc()));
        }
        println!("{row}");
    }
    Ok(())
}
