//! Quickstart: simulate one memory-intensive workload under the out-of-order
//! baseline and under Precise Runahead Execution, and print the speedup.
//!
//! Run with: `cargo run --release --example quickstart`

use precise_runahead::core::OooCore;
use precise_runahead::model::config::SimConfig;
use precise_runahead::runahead::Technique;
use precise_runahead::workloads::{Workload, WorkloadParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let budget_uops = 60_000;
    let config = SimConfig::haswell_like();
    let workload = Workload::MilcLike;
    let program = workload.build(&WorkloadParams::default());

    println!(
        "workload : {} — {}",
        workload.name(),
        workload.description()
    );
    println!(
        "config   : {}-entry ROB, {}-entry IQ, {} int + {} fp physical registers",
        config.core.rob_entries,
        config.core.iq_entries,
        config.core.int_phys_regs,
        config.core.fp_phys_regs
    );
    println!();

    let mut baseline_ipc = 0.0;
    for technique in [Technique::OutOfOrder, Technique::Pre] {
        let mut core = OooCore::new(&config, &program, technique)?;
        core.run(budget_uops, 50_000_000);
        let stats = core.stats();
        if technique == Technique::OutOfOrder {
            baseline_ipc = stats.ipc();
        }
        println!("{:<10} ipc {:.3}  cycles {:>9}  LLC MPKI {:>6.1}  runahead entries {:>6}  prefetches {:>6}",
            technique.label(), stats.ipc(), stats.cycles, stats.l3_mpki(),
            stats.runahead_entries, stats.runahead_prefetches_issued);
        if technique == Technique::Pre {
            println!();
            println!(
                "PRE speedup over the out-of-order baseline: {:.2}x",
                stats.ipc() / baseline_ipc
            );
        }
    }
    Ok(())
}
