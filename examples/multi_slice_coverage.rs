//! The paper's key coverage argument (Sections 2.4 and 5.1): the runahead
//! buffer replays a *single* dependence chain per runahead interval, while
//! PRE's Stalling Slice Table tracks *every* chain. On workloads whose misses
//! come from one slice the two are comparable; as soon as several independent
//! slices stall the window, PRE pulls ahead.
//!
//! This example compares RA-buffer and PRE on the single-slice
//! `libquantum-like` stream and on the many-slice `lbm-like` and `milc-like`
//! kernels, and reports how many distinct slice PCs the SST learned.
//!
//! Run with: `cargo run --release --example multi_slice_coverage`

use precise_runahead::core::OooCore;
use precise_runahead::model::config::SimConfig;
use precise_runahead::runahead::Technique;
use precise_runahead::workloads::{Workload, WorkloadParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let budget = 50_000;
    let config = SimConfig::haswell_like();
    println!(
        "{:<18} {:>10} {:>12} {:>12} {:>16}",
        "workload", "OoO ipc", "RA-buffer", "PRE", "slice PCs (SST)"
    );
    for workload in [
        Workload::LibquantumLike,
        Workload::LbmLike,
        Workload::MilcLike,
    ] {
        let program = workload.build(&WorkloadParams::default());
        let mut ipc = std::collections::HashMap::new();
        let mut sst_pcs = 0;
        for technique in [
            Technique::OutOfOrder,
            Technique::RunaheadBuffer,
            Technique::Pre,
        ] {
            let mut core = OooCore::new(&config, &program, technique)?;
            core.run(budget, 40_000_000);
            ipc.insert(technique, core.stats().ipc());
            if technique == Technique::Pre {
                sst_pcs = core.stats().sst_inserts;
            }
        }
        let base = ipc[&Technique::OutOfOrder];
        println!(
            "{:<18} {:>10.3} {:>11.2}x {:>11.2}x {:>16}",
            workload.name(),
            base,
            ipc[&Technique::RunaheadBuffer] / base,
            ipc[&Technique::Pre] / base,
            sst_pcs,
        );
    }
    println!();
    println!("The SST learns every slice (multiple PCs); the runahead buffer is limited");
    println!("to one chain per interval, which costs it coverage on multi-slice workloads.");
    Ok(())
}
