//! Why runahead execution cannot accelerate a *single* dependent pointer
//! chase — and why independent chains and array scans still benefit.
//!
//! The example builds two hand-written kernels with the `KernelBuilder`:
//!
//! * `single-chase`: one linked-list traversal. Every next address depends on
//!   the previous missing load, so runahead execution has nothing independent
//!   to prefetch and all techniques perform the same.
//! * `chase-plus-scan`: the same traversal interleaved with an independent
//!   strided array scan. The scan's stalling slices are independent of the
//!   missing data, so Precise Runahead Execution prefetches them and the
//!   traversal's latency is partially hidden.
//!
//! Run with: `cargo run --release --example pointer_chase_mlp`

use precise_runahead::core::OooCore;
use precise_runahead::model::config::SimConfig;
use precise_runahead::model::isa::{AluOp, BranchCond};
use precise_runahead::model::program::Program;
use precise_runahead::model::reg::ArchReg;
use precise_runahead::runahead::Technique;
use precise_runahead::workloads::KernelBuilder;

/// Builds a pointer-chase kernel over `nodes` cache lines, optionally with an
/// independent strided scan per iteration.
fn chase_kernel(nodes: u64, with_scan: bool) -> Program {
    let mut b = KernelBuilder::new(if with_scan {
        "chase-plus-scan"
    } else {
        "single-chase"
    });
    let ptr = ArchReg::int(1);
    let t = ArchReg::int(2);
    let n = ArchReg::int(3);
    let i = ArchReg::int(4);
    let mask = ArchReg::int(5);
    let scan_base = ArchReg::int(6);
    let addr = ArchReg::int(7);
    let val = ArchReg::int(8);

    let list_base = 0x4000_0000u64;
    // A simple strided "linked list": node k points to node k + 37 (mod nodes),
    // 64 bytes apart, initialized explicitly so the chase reads real pointers.
    for k in 0..nodes {
        let cur = list_base + k * 64;
        let next = list_base + ((k + 37) % nodes) * 64;
        b.init_mem(cur, next);
    }
    b.li(ptr, list_base as i64);
    b.li(t, 0);
    b.li(n, 1_000_000_000);
    b.li(i, 0);
    b.li(mask, (32 * 1024 * 1024 - 1) as i64);
    b.li(scan_base, 0x1000_0000);
    let loop_top = b.pc();
    b.load(ptr, ptr, 0);
    if with_scan {
        b.alu(AluOp::Add, addr, scan_base, i);
        b.load(val, addr, 0);
        b.store(val, addr, 8);
        b.alui(AluOp::Add, i, i, 32);
        b.alu(AluOp::And, i, i, mask);
    }
    b.alui(AluOp::Add, t, t, 1);
    b.branch(BranchCond::Lt, t, n, loop_top);
    b.finish()
}

fn run(program: &Program, technique: Technique) -> (f64, u64) {
    let mut core =
        OooCore::new(&SimConfig::haswell_like(), program, technique).expect("valid core");
    core.run(40_000, 40_000_000);
    (core.stats().ipc(), core.stats().runahead_prefetches_issued)
}

fn main() {
    for with_scan in [false, true] {
        let program = chase_kernel(16 * 1024, with_scan);
        println!("== {} ==", program.name);
        let (base_ipc, _) = run(&program, Technique::OutOfOrder);
        for technique in [Technique::OutOfOrder, Technique::Runahead, Technique::Pre] {
            let (ipc, prefetches) = run(&program, technique);
            println!(
                "  {:<10} ipc {:.3}  speedup {:.2}x  prefetches {}",
                technique.label(),
                ipc,
                ipc / base_ipc,
                prefetches
            );
        }
        println!();
    }
    println!("A single dependent chase gains nothing from running ahead; adding an");
    println!("independent scan gives the runahead interval real work to prefetch.");
}
