//! Energy accounting for one workload across all five machine configurations
//! (Figure 3's per-workload view), broken down by component.
//!
//! Run with: `cargo run --release --example energy_report`

use precise_runahead::core::OooCore;
use precise_runahead::energy::EnergyModel;
use precise_runahead::model::config::SimConfig;
use precise_runahead::runahead::Technique;
use precise_runahead::workloads::{Workload, WorkloadParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = SimConfig::haswell_like();
    let workload = Workload::LbmLike;
    let program = workload.build(&WorkloadParams::default());
    let model = EnergyModel::default();

    println!("workload: {} — {}", workload.name(), workload.description());
    println!(
        "{:<10} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "technique",
        "core dyn",
        "ra structs",
        "caches",
        "dram dyn",
        "static",
        "total mJ",
        "savings"
    );
    let mut baseline_total = 0.0;
    for technique in Technique::ALL {
        let mut core = OooCore::new(&config, &program, technique)?;
        core.run(60_000, 40_000_000);
        let breakdown = model.evaluate(core.stats(), &config);
        if technique == Technique::OutOfOrder {
            baseline_total = breakdown.total_nj();
        }
        let savings = 1.0 - breakdown.total_nj() / baseline_total;
        println!(
            "{:<10} {:>9.3} {:>10.3} {:>9.3} {:>9.3} {:>9.3} {:>9.3} {:>8.1}%",
            technique.label(),
            breakdown.core_dynamic_nj / 1e6,
            breakdown.runahead_structures_nj / 1e6,
            breakdown.cache_dynamic_nj / 1e6,
            breakdown.dram_dynamic_nj / 1e6,
            (breakdown.core_static_nj + breakdown.dram_static_nj) / 1e6,
            breakdown.total_mj(),
            savings * 100.0
        );
    }
    println!();
    println!("Flush-style runahead re-fetches and re-executes a full window per interval,");
    println!("which shows up as extra core dynamic energy; PRE avoids that and converts its");
    println!("speedup into static-energy savings (Figure 3 of the paper).");
    Ok(())
}
